type energy_model = {
  flash_read_nj_per_byte : int;
  ram_read_nj_per_byte : int;
  ram_write_nj_per_byte : int;
  dec_compute_nj_per_byte : int;
  comp_compute_nj_per_byte : int;
  exception_nj : int;
  patch_nj : int;
  exec_nj_per_cycle : int;
  ram_static_nj_per_kb_cycle : int;
}

type t = {
  exception_cycles : int;
  patch_cycles : int;
  dec_setup_cycles : int;
  dec_cycles_per_byte : int;
  comp_setup_cycles : int;
  comp_cycles_per_byte : int;
  energy : energy_model;
  profile : string;
}

(* ------------------------------------------------------------------ *)
(* Dimensions and charge vectors                                       *)

type dimension =
  | Cycles
  | Energy_nj

let dimensions = [ Cycles; Energy_nj ]

let dimension_name = function
  | Cycles -> "cycles"
  | Energy_nj -> "energy_nj"

type vector = { cycles : int; energy_nj : int }

let zero = { cycles = 0; energy_nj = 0 }

let add a b =
  { cycles = a.cycles + b.cycles; energy_nj = a.energy_nj + b.energy_nj }

let get v = function
  | Cycles -> v.cycles
  | Energy_nj -> v.energy_nj

(* ------------------------------------------------------------------ *)
(* Validation (same guard style as ccomp's [bounded_int] flag parser)  *)

let bounded ~min what v =
  if v < min then
    invalid_arg (Printf.sprintf "%s must be >= %d (got %d)" what min v)

let validate t =
  bounded ~min:0 "exception_cycles" t.exception_cycles;
  bounded ~min:0 "patch_cycles" t.patch_cycles;
  bounded ~min:0 "dec_setup_cycles" t.dec_setup_cycles;
  bounded ~min:1 "dec_cycles_per_byte" t.dec_cycles_per_byte;
  bounded ~min:0 "comp_setup_cycles" t.comp_setup_cycles;
  bounded ~min:1 "comp_cycles_per_byte" t.comp_cycles_per_byte;
  let e = t.energy in
  bounded ~min:0 "flash_read_nj_per_byte" e.flash_read_nj_per_byte;
  bounded ~min:0 "ram_read_nj_per_byte" e.ram_read_nj_per_byte;
  bounded ~min:0 "ram_write_nj_per_byte" e.ram_write_nj_per_byte;
  bounded ~min:0 "dec_compute_nj_per_byte" e.dec_compute_nj_per_byte;
  bounded ~min:0 "comp_compute_nj_per_byte" e.comp_compute_nj_per_byte;
  bounded ~min:0 "exception_nj" e.exception_nj;
  bounded ~min:0 "patch_nj" e.patch_nj;
  bounded ~min:0 "exec_nj_per_cycle" e.exec_nj_per_cycle;
  bounded ~min:0 "ram_static_nj_per_kb_cycle" e.ram_static_nj_per_kb_cycle;
  t

(* ------------------------------------------------------------------ *)
(* Device profiles                                                     *)

let no_energy =
  {
    flash_read_nj_per_byte = 0;
    ram_read_nj_per_byte = 0;
    ram_write_nj_per_byte = 0;
    dec_compute_nj_per_byte = 0;
    comp_compute_nj_per_byte = 0;
    exception_nj = 0;
    patch_nj = 0;
    exec_nj_per_cycle = 0;
    ram_static_nj_per_kb_cycle = 0;
  }

let default =
  {
    exception_cycles = 40;
    patch_cycles = 4;
    dec_setup_cycles = 30;
    dec_cycles_per_byte = 4;
    comp_setup_cycles = 30;
    comp_cycles_per_byte = 8;
    energy = no_energy;
    profile = "paper-2005";
  }

(* NOR flash reads dominate; RAM is cheap to hold. The leakage rate is
   deliberately small so dynamic energy decides placement, as it does
   on flash-execute parts. *)
let cortex_m_flash_energy =
  {
    flash_read_nj_per_byte = 30;
    ram_read_nj_per_byte = 5;
    ram_write_nj_per_byte = 6;
    dec_compute_nj_per_byte = 2;
    comp_compute_nj_per_byte = 3;
    exception_nj = 800;
    patch_nj = 40;
    exec_nj_per_cycle = 1;
    ram_static_nj_per_kb_cycle = 1;
  }

(* Retained SRAM is the expensive resource: holding decompressed
   copies leaks energy in proportion to bytes x cycles, so large
   working sets are penalised even when they save decompressions. *)
let sram_heavy_energy =
  {
    flash_read_nj_per_byte = 8;
    ram_read_nj_per_byte = 4;
    ram_write_nj_per_byte = 5;
    dec_compute_nj_per_byte = 2;
    comp_compute_nj_per_byte = 3;
    exception_nj = 600;
    patch_nj = 30;
    exec_nj_per_cycle = 1;
    ram_static_nj_per_kb_cycle = 40;
  }

let profile_list =
  [
    ("paper-2005", default);
    ( "cortex-m-flash",
      { default with energy = cortex_m_flash_energy; profile = "cortex-m-flash" }
    );
    ( "sram-heavy",
      { default with energy = sram_heavy_energy; profile = "sram-heavy" } );
  ]

let profile_names = List.map fst profile_list

let profile name =
  match List.assoc_opt name profile_list with
  | Some t -> t
  | None ->
    invalid_arg
      (Printf.sprintf "unknown device profile %S (known: %s)" name
         (String.concat ", " profile_names))

let with_rates ~dec_cycles_per_byte ~comp_cycles_per_byte t =
  bounded ~min:1 "dec_cycles_per_byte" dec_cycles_per_byte;
  bounded ~min:1 "comp_cycles_per_byte" comp_cycles_per_byte;
  { t with dec_cycles_per_byte; comp_cycles_per_byte }

let dec_cycles t ~compressed_bytes =
  t.dec_setup_cycles + (t.dec_cycles_per_byte * compressed_bytes)

let comp_cycles t ~uncompressed_bytes =
  t.comp_setup_cycles + (t.comp_cycles_per_byte * uncompressed_bytes)

(* ------------------------------------------------------------------ *)
(* Charge constructors: every priced event becomes one vector.         *)

let exec_charge t ~cycles =
  { cycles; energy_nj = t.energy.exec_nj_per_cycle * cycles }

let exception_charge t =
  { cycles = t.exception_cycles; energy_nj = t.energy.exception_nj }

let patch_charge t = { cycles = t.patch_cycles; energy_nj = t.energy.patch_nj }

(* A decompression reads the compressed image (flash), runs the
   decoder over the output bytes and writes the copy into RAM. The
   demand variant is on the execution thread's critical path; the
   prefetch variant runs on the decompression thread, so it costs no
   wall-clock cycles but the same energy. *)
let dec_energy t ~compressed_bytes ~uncompressed_bytes =
  (t.energy.flash_read_nj_per_byte * compressed_bytes)
  + (t.energy.dec_compute_nj_per_byte * uncompressed_bytes)
  + (t.energy.ram_write_nj_per_byte * uncompressed_bytes)

let demand_dec_charge t ~compressed_bytes ~uncompressed_bytes =
  {
    cycles = dec_cycles t ~compressed_bytes;
    energy_nj = dec_energy t ~compressed_bytes ~uncompressed_bytes;
  }

let prefetch_dec_charge t ~compressed_bytes ~uncompressed_bytes =
  { cycles = 0; energy_nj = dec_energy t ~compressed_bytes ~uncompressed_bytes }

(* Recompression reads the copy back from RAM and runs the encoder;
   it lives on the compression thread (no wall-clock cycles). *)
let recompress_charge t ~uncompressed_bytes =
  {
    cycles = 0;
    energy_nj =
      (t.energy.ram_read_nj_per_byte * uncompressed_bytes)
      + (t.energy.comp_compute_nj_per_byte * uncompressed_bytes);
  }

(* Patch-backs on discard also run on the compression thread. *)
let patch_back_charge t ~sites =
  { cycles = 0; energy_nj = sites * t.energy.patch_nj }

let stall_charge _t ~cycles = { cycles; energy_nj = 0 }

(* Leakage of the decompressed copy area: [byte_cycles] is the
   time-weighted occupancy integral (Memsim.Accounting.integral),
   scaled down to kB-cycles before pricing to keep the numbers in a
   sane range. Integer division truncates deterministically. *)
let ram_static_charge t ~byte_cycles =
  if byte_cycles < 0 then
    invalid_arg
      (Printf.sprintf "byte_cycles must be >= 0 (got %d)" byte_cycles);
  {
    cycles = 0;
    energy_nj = t.energy.ram_static_nj_per_kb_cycle * byte_cycles / 1024;
  }

(* ------------------------------------------------------------------ *)
(* Accumulator                                                         *)

type source =
  | Exec
  | Exception
  | Patch
  | Demand_dec
  | Prefetch_dec
  | Recompress
  | Patch_back
  | Stall
  | Ram_static

let source_index = function
  | Exec -> 0
  | Exception -> 1
  | Patch -> 2
  | Demand_dec -> 3
  | Prefetch_dec -> 4
  | Recompress -> 5
  | Patch_back -> 6
  | Stall -> 7
  | Ram_static -> 8

let source_names =
  [|
    "exec";
    "exception";
    "patch";
    "demand_dec";
    "prefetch_dec";
    "recompress";
    "patch_back";
    "stall";
    "ram_static";
  |]

let num_sources = Array.length source_names
let source_name s = source_names.(source_index s)

module Acc = struct
  (* Flat int arrays, one cell per (dimension, source): charging is a
     handful of integer adds with no vector records built. The engine
     charges several times per simulated step, so this sits on the
     hot path; vectors are only materialized on read (and for the
     journal, which is absent in production runs). *)
  type acc = {
    cycles_by : int array;
    energy_by : int array;
    mutable total_cycles : int;
    mutable total_energy : int;
    journal : (source -> vector -> unit) option;
  }

  let create ?journal () =
    {
      cycles_by = Array.make num_sources 0;
      energy_by = Array.make num_sources 0;
      total_cycles = 0;
      total_energy = 0;
      journal;
    }

  let charge_raw acc src ~cycles ~energy_nj =
    let i = source_index src in
    acc.cycles_by.(i) <- acc.cycles_by.(i) + cycles;
    acc.energy_by.(i) <- acc.energy_by.(i) + energy_nj;
    acc.total_cycles <- acc.total_cycles + cycles;
    acc.total_energy <- acc.total_energy + energy_nj;
    match acc.journal with
    | Some f -> f src { cycles; energy_nj }
    | None -> ()

  let charge acc src v =
    charge_raw acc src ~cycles:v.cycles ~energy_nj:v.energy_nj

  let total acc = { cycles = acc.total_cycles; energy_nj = acc.total_energy }

  let total_of acc src =
    let i = source_index src in
    { cycles = acc.cycles_by.(i); energy_nj = acc.energy_by.(i) }

  let dimension_totals acc =
    let t = total acc in
    List.map (fun d -> (dimension_name d, get t d)) dimensions
end
