type t = {
  exception_cycles : int;
  patch_cycles : int;
  dec_setup_cycles : int;
  dec_cycles_per_byte : int;
  comp_setup_cycles : int;
  comp_cycles_per_byte : int;
}

let default =
  {
    exception_cycles = 40;
    patch_cycles = 4;
    dec_setup_cycles = 30;
    dec_cycles_per_byte = 4;
    comp_setup_cycles = 30;
    comp_cycles_per_byte = 8;
  }

let with_rates ~dec_cycles_per_byte ~comp_cycles_per_byte t =
  { t with dec_cycles_per_byte; comp_cycles_per_byte }

let dec_cycles t ~compressed_bytes =
  t.dec_setup_cycles + (t.dec_cycles_per_byte * compressed_bytes)

let comp_cycles t ~uncompressed_bytes =
  t.comp_setup_cycles + (t.comp_cycles_per_byte * uncompressed_bytes)
