type counter = { mutable c_value : int }

type histogram = {
  bounds : int array;  (* inclusive upper bounds, ascending *)
  cells : int array;  (* one per bound + 1 for +Inf *)
  mutable h_n : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type cell =
  | Counter of counter
  | Histogram of histogram

type entry = { name : string; labels : (string * string) list; cell : cell }

type t = {
  index : (string * (string * string) list, entry) Hashtbl.t;
  mutable rev_order : entry list;
}

let create () = { index = Hashtbl.create 32; rev_order = [] }

let key name labels =
  (name, List.sort compare labels)

let find_or_add t ~name ~labels make =
  let k = key name labels in
  match Hashtbl.find_opt t.index k with
  | Some e -> e
  | None ->
    let e = { name; labels; cell = make () } in
    Hashtbl.replace t.index k e;
    t.rev_order <- e :: t.rev_order;
    e

let counter t ?(labels = []) name =
  match
    (find_or_add t ~name ~labels (fun () -> Counter { c_value = 0 })).cell
  with
  | Counter c -> c
  | Histogram _ ->
    invalid_arg
      (Printf.sprintf "Sim.Metrics.counter: %S is already a histogram" name)

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let set c v = c.c_value <- v
let value c = c.c_value

let default_buckets = [ 1; 4; 16; 64; 256; 1024; 4096; 16384; 65536 ]

let histogram t ?(labels = []) ?(buckets = default_buckets) name =
  let rec sorted = function
    | a :: (b :: _ as rest) -> a < b && sorted rest
    | [ _ ] | [] -> true
  in
  if not (sorted buckets) then
    invalid_arg "Sim.Metrics.histogram: buckets must be strictly ascending";
  let bounds = Array.of_list buckets in
  let entry =
    find_or_add t ~name ~labels (fun () ->
        Histogram
          {
            bounds;
            cells = Array.make (Array.length bounds + 1) 0;
            h_n = 0;
            h_sum = 0;
            h_max = 0;
          })
  in
  match entry.cell with
  | Histogram h ->
    if h.bounds <> bounds then
      invalid_arg
        (Printf.sprintf
           "Sim.Metrics.histogram: %S re-registered with different buckets"
           name);
    h
  | Counter _ ->
    invalid_arg
      (Printf.sprintf "Sim.Metrics.histogram: %S is already a counter" name)

let observe h v =
  let rec slot i =
    if i >= Array.length h.bounds then i
    else if v <= h.bounds.(i) then i
    else slot (i + 1)
  in
  let i = slot 0 in
  h.cells.(i) <- h.cells.(i) + 1;
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

let observations h = h.h_n
let sum h = h.h_sum
let max_value h = h.h_max
let mean h = if h.h_n = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_n

let bucket_counts h =
  let acc = ref 0 in
  let cumulative =
    Array.mapi
      (fun i bound ->
        acc := !acc + h.cells.(i);
        (Some bound, !acc))
      h.bounds
  in
  Array.to_list cumulative @ [ (None, h.h_n) ]

(* Prometheus-style bucket interpolation: find the first bucket whose
   cumulative count reaches the requested rank, then interpolate
   linearly inside it. The +Inf bucket has no width, so ranks landing
   there report the exact maximum instead. *)
let quantile h q =
  if q < 0.0 || q > 1.0 then
    invalid_arg (Printf.sprintf "Sim.Metrics.quantile: q=%g not in [0,1]" q);
  if h.h_n = 0 then 0.0
  else begin
    let rank = q *. float_of_int h.h_n in
    let rec seek i below =
      if i >= Array.length h.bounds then float_of_int h.h_max
      else
        let here = below + h.cells.(i) in
        if float_of_int here >= rank && h.cells.(i) > 0 then begin
          let lo = if i = 0 then 0.0 else float_of_int h.bounds.(i - 1) in
          let hi = float_of_int h.bounds.(i) in
          let into = (rank -. float_of_int below) /. float_of_int h.cells.(i) in
          Float.min (lo +. ((hi -. lo) *. into)) (float_of_int h.h_max)
        end
        else seek (i + 1) here
    in
    seek 0 0
  end

type value_view =
  | Counter_value of int
  | Histogram_value of {
      n : int;
      total : int;
      max_v : int;
      cumulative : (int option * int) list;
    }

let snapshot t =
  List.rev_map
    (fun e ->
      let view =
        match e.cell with
        | Counter c -> Counter_value c.c_value
        | Histogram h ->
          Histogram_value
            {
              n = h.h_n;
              total = h.h_sum;
              max_v = h.h_max;
              cumulative = bucket_counts h;
            }
      in
      (e.name, e.labels, view))
    t.rev_order

let render_name name labels =
  match labels with
  | [] -> name
  | labels ->
    Printf.sprintf "%s{%s}" name
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels))

let to_table ?(title = "metrics") t =
  let table =
    Report.Table.create ~title
      ~columns:[ ("metric", Report.Table.Left); ("value", Report.Table.Right) ]
  in
  let row name labels v =
    Report.Table.add_row table [ render_name name labels; string_of_int v ]
  in
  List.iter
    (fun (name, labels, view) ->
      match view with
      | Counter_value v -> row name labels v
      | Histogram_value { n; total; max_v; cumulative } ->
        row (name ^ "_count") labels n;
        row (name ^ "_sum") labels total;
        row (name ^ "_max") labels max_v;
        List.iter
          (fun (bound, c) ->
            let le =
              match bound with
              | Some b -> string_of_int b
              | None -> "+Inf"
            in
            row (name ^ "_bucket") (labels @ [ ("le", le) ]) c)
          cumulative)
    (snapshot t);
  table

let to_jsonl ?title t = Report.Table.to_jsonl (to_table ?title t)
