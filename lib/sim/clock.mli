(** Simulated time for the three-thread model (paper, Figure 4).

    A {!t} is the execution thread's wall clock; a {!resource} is a
    helper thread (decompression or compression) that serves requests
    one at a time, concurrently with execution. Helper work only costs
    wall-clock time when the execution thread has to wait for it
    ({!wait_until}). *)

type t

val create : unit -> t
val now : t -> int

val advance : t -> cycles:int -> unit
(** Moves the clock forward. @raise Invalid_argument on negative
    [cycles]. *)

val wait_until : t -> int -> int
(** [wait_until t time] advances to [time] if it is in the future and
    returns the cycles waited (0 if [time] has already passed). *)

(** A serially-reused helper thread: requests scheduled on it start at
    [max now free_at] and complete after their duration. *)
type resource

val resource : unit -> resource

val schedule : resource -> now:int -> cycles:int -> int
(** Books [cycles] of work, starting when the resource next falls
    idle, and returns the completion time. Accumulates busy time. *)

val push_back : resource -> now:int -> cycles:int -> unit
(** Books [cycles] without a completion time the caller cares about
    (e.g. patch-backs folded into the compression thread's backlog). *)

val free_at : resource -> int
(** Time at which the currently-booked work completes. *)

val busy_cycles : resource -> int
(** Total cycles of work ever booked on this resource. *)
