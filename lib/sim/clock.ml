type t = { mutable now : int }

let create () = { now = 0 }
let now t = t.now

let advance t ~cycles =
  if cycles < 0 then invalid_arg "Sim.Clock.advance: negative cycles";
  t.now <- t.now + cycles

let wait_until t time =
  if time > t.now then begin
    let waited = time - t.now in
    t.now <- time;
    waited
  end
  else 0

type resource = { mutable free_at : int; mutable busy : int }

let resource () = { free_at = 0; busy = 0 }

let schedule r ~now ~cycles =
  let start = max now r.free_at in
  r.free_at <- start + cycles;
  r.busy <- r.busy + cycles;
  r.free_at

let push_back r ~now ~cycles =
  r.free_at <- max r.free_at now + cycles;
  r.busy <- r.busy + cycles

let free_at r = r.free_at
let busy_cycles r = r.busy
