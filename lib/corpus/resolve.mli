(** One string vocabulary for "a scenario": a workload name, a [gen:]
    generator spec ({!Spec}), or a [multi:] multitasking composition.
    Every consumer of scenario names — the CLI, fleet sweeps, the
    service wire — funnels through here, so a generated or composed
    scenario is cacheable and sweepable exactly like a named one.

    The corpus layer does not know the workload suite; callers inject
    a [lookup] for plain names, keeping the dependency arrow pointing
    from consumers down into the corpus, not sideways. *)

type multi = {
  quantum : int;
  seed : int;
  jitter : float;  (** permille-rounded, like {!Spec.t}'s skew *)
  tasks : string list;  (** workload names or [gen:] specs, ≥ 2 *)
}

val is_gen : string -> bool
val is_multi : string -> bool

val is_spec : string -> bool
(** [gen:] or [multi:] — i.e. not a plain workload name. *)

val multi_to_string : multi -> string
(** Canonical: [multi:quantum=Q,seed=S,jitter=J;task+task+…]. *)

val multi_of_string : string -> (multi, string) result
(** Parses [multi:k=v,…;t1+t2+…]. Header fields may appear in any
    order (defaults: [seed=1], [jitter=0]); [quantum] is required.
    Embedded [gen:] tasks are parsed and canonicalized; plain-name
    tasks pass through untouched. *)

val multi_of_string_exn : string -> multi

val canonicalize : known:(string -> bool) -> string -> (string, string) result
(** Canonical form of any scenario string: [gen:] and [multi:] specs
    are parsed and re-printed (so equal specs always hash to equal
    fleet cache keys); plain names must satisfy [known]. *)

val scenario :
  lookup:(string -> Core.Scenario.t) ->
  ?codec:Compress.Codec.t ->
  string ->
  Core.Scenario.t
(** Resolves any scenario string. [lookup] serves plain workload
    names (closing over whatever codec handling the caller wants);
    [codec] applies to [gen:] specs (including those nested in a
    [multi:]).
    @raise Invalid_argument on a malformed spec. *)

val multitask :
  lookup:(string -> Core.Scenario.t) ->
  ?codec:Compress.Codec.t ->
  multi ->
  Multitask.t
(** The composed scenario plus per-task attribution (what
    {!scenario} returns just the [.scenario] of). *)
