type task = {
  name : string;
  first_block : int;
  n_blocks : int;
  trace_len : int;
}

type t = {
  name : string;
  scenario : Core.Scenario.t;
  tasks : task array;
  owner : int array;
}

let align_up n a = (n + a - 1) / a * a

(* Round-robin interleave with a seeded quantum jitter. Tasks whose
   trace is exhausted leave the rotation. *)
let interleave ~quantum ~seed ~jitter ~id_offsets traces =
  let prng = Prng.create seed in
  let n = Array.length traces in
  let pos = Array.make n 0 in
  let total = Array.fold_left (fun a t -> a + Array.length t) 0 traces in
  let out = Array.make total 0 in
  let filled = ref 0 in
  let cur = ref 0 in
  while !filled < total do
    let t = !cur in
    let len = Array.length traces.(t) in
    if pos.(t) < len then begin
      let slice =
        if jitter = 0.0 then quantum
        else begin
          let delta = (Prng.float prng *. 2.0) -. 1.0 in
          max 1
            (quantum
            + int_of_float (Float.round (delta *. jitter *. float_of_int quantum))
            )
        end
      in
      let take = min slice (len - pos.(t)) in
      for i = 0 to take - 1 do
        out.(!filled + i) <- traces.(t).(pos.(t) + i) + id_offsets.(t)
      done;
      pos.(t) <- pos.(t) + take;
      filled := !filled + take
    end;
    cur := (t + 1) mod n
  done;
  out

let compose ?name ~quantum ?(seed = 1) ?(jitter = 0.0) scenarios =
  if scenarios = [] then invalid_arg "Corpus.Multitask.compose: no tasks";
  if quantum < 1 then invalid_arg "Corpus.Multitask.compose: quantum < 1";
  if jitter < 0.0 || jitter >= 1.0 then
    invalid_arg "Corpus.Multitask.compose: jitter not in [0, 1)";
  let scs = Array.of_list scenarios in
  let n = Array.length scs in
  let id_offsets = Array.make n 0 in
  let addr_offsets = Array.make n 0 in
  let next_id = ref 0 and next_addr = ref 0 in
  Array.iteri
    (fun i (sc : Core.Scenario.t) ->
      id_offsets.(i) <- !next_id;
      addr_offsets.(i) <- !next_addr;
      next_id := !next_id + Cfg.Graph.num_blocks sc.graph;
      let span =
        Array.fold_left
          (fun a (b : Cfg.Graph.block) -> max a (b.addr + b.byte_size))
          0
          (Cfg.Graph.blocks sc.graph)
      in
      next_addr := align_up (!next_addr + span) 64)
    scs;
  let blocks =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun i (sc : Core.Scenario.t) ->
              Array.map
                (fun (b : Cfg.Graph.block) ->
                  {
                    b with
                    Cfg.Graph.id = b.id + id_offsets.(i);
                    addr = b.addr + addr_offsets.(i);
                    label =
                      Option.map
                        (fun l -> Printf.sprintf "t%d.%s" i l)
                        b.label;
                  })
                (Cfg.Graph.blocks sc.graph))
            scs))
  in
  let edges =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun i (sc : Core.Scenario.t) ->
              List.map
                (fun (s, d, k) -> (s + id_offsets.(i), d + id_offsets.(i), k))
                (Cfg.Graph.edges sc.graph))
            scs))
  in
  let graph =
    Cfg.Graph.make ~entry:(id_offsets.(0) + Cfg.Graph.entry scs.(0).graph)
      blocks edges
  in
  let info =
    Array.concat (Array.to_list (Array.map (fun sc -> sc.Core.Scenario.info) scs))
  in
  let trace =
    interleave ~quantum ~seed ~jitter ~id_offsets
      (Array.map (fun sc -> sc.Core.Scenario.trace) scs)
  in
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "multi:quantum=%d,seed=%d,jitter=%g;%s" quantum seed jitter
        (String.concat "+"
           (Array.to_list (Array.map (fun sc -> sc.Core.Scenario.name) scs)))
  in
  let tasks =
    Array.mapi
      (fun i (sc : Core.Scenario.t) ->
        {
          name = sc.name;
          first_block = id_offsets.(i);
          n_blocks = Cfg.Graph.num_blocks sc.graph;
          trace_len = Array.length sc.trace;
        })
      scs
  in
  let owner = Array.make (Array.length blocks) 0 in
  Array.iteri
    (fun i t ->
      for b = t.first_block to t.first_block + t.n_blocks - 1 do
        owner.(b) <- i
      done)
    tasks;
  let scenario =
    {
      Core.Scenario.name;
      graph;
      info;
      trace;
      codec = scs.(0).codec;
      program = None;
    }
  in
  { name; scenario; tasks; owner }

type task_stats = {
  task : task;
  visits : int;
  demand_decompressions : int;
  discards : int;
  evictions : int;
  evicted_while_inactive : int;
}

let run ?profile ?sink ?registry t policy =
  let n = Array.length t.tasks in
  let visits = Array.make n 0 in
  let demand = Array.make n 0 in
  let discards = Array.make n 0 in
  let evictions = Array.make n 0 in
  let cross = Array.make n 0 in
  (* Which task the execution thread is currently running: the owner of
     the last executed block. Deletions land on whichever task owns the
     deleted block; if that is not the running task, the eviction
     crossed a task boundary. *)
  let current = ref 0 in
  let attribute = function
    | Sim.Events.Exec { block; _ } ->
      let o = t.owner.(block) in
      current := o;
      visits.(o) <- visits.(o) + 1
    | Sim.Events.Demand_decompress { block; _ } ->
      let o = t.owner.(block) in
      demand.(o) <- demand.(o) + 1
    | Sim.Events.Discard { block; _ } ->
      let o = t.owner.(block) in
      discards.(o) <- discards.(o) + 1;
      if o <> !current then cross.(o) <- cross.(o) + 1
    | Sim.Events.Evict { block; _ } ->
      let o = t.owner.(block) in
      evictions.(o) <- evictions.(o) + 1;
      if o <> !current then cross.(o) <- cross.(o) + 1
    | _ -> ()
  in
  let attr_sink = Sim.Events.callback attribute in
  let sink =
    match sink with
    | None -> attr_sink
    | Some s -> Sim.Events.tee [ attr_sink; s ]
  in
  let metrics = Core.Scenario.run ?profile ~sink ?registry t.scenario policy in
  let stats =
    Array.mapi
      (fun i task ->
        {
          task;
          visits = visits.(i);
          demand_decompressions = demand.(i);
          discards = discards.(i);
          evictions = evictions.(i);
          evicted_while_inactive = cross.(i);
        })
      t.tasks
  in
  (metrics, stats)
