(* Lowering a Spec.t to a real ERIS-32 program.

   Register plan (r0 is hardwired zero):
     r1..r6   loop counters, one per nesting level (count down to 0)
     r7       in-program LCG state (drives the branch dispatch)
     r8       filler accumulator
     r9       rounds countdown
     r10      LCG multiplier
     r11      dispatch selector
     r12      scratch (compare constants, filler)
     sp       call-chain stack, grows down from 48 KiB

   Static layout: prologue, round header, cold chain, hot loop nest,
   round footer, halt, call-chain functions. The hot region is the two
   address ranges [nest) and [functions); everything else — prologue,
   round scaffold, cold chain — executes once per round and counts as
   cold when measuring skew. *)

let counter l = Eris.Types.reg (1 + l) (* loop-level l counts in r1..r6 *)
let r7 = Eris.Types.reg 7
let r8 = Eris.Types.reg 8
let r9 = Eris.Types.reg 9
let r10 = Eris.Types.reg 10
let r11 = Eris.Types.reg 11
let r12 = Eris.Types.reg 12

type built = {
  spec : Spec.t;
  program : Eris.Program.t;
  graph : Cfg.Graph.t;
  trace : int array;
  measured_skew : float;
  hot_blocks : int;
}

let lcg_mult = 1103515245
let lcg_add = 4321 (* must fit imm14; the classic 12345 does not *)

(* Loads a 32-bit constant in at most two instructions. *)
let emit_const b rd v =
  let v = v land 0xFFFFFFFF in
  let hi = v lsr 14 and lo = v land 0x3FFF in
  if hi <> 0 then begin
    Eris.Builder.emit b (Eris.Types.Lui (rd, hi));
    if lo <> 0 then Eris.Builder.emit b (Eris.Types.Alui (Eris.Types.Or, rd, rd, lo))
  end
  else Eris.Builder.emit b (Eris.Types.Alui (Eris.Types.Add, rd, Eris.Types.r0, lo))

let sample_size prng = function
  | Spec.Uniform (lo, hi) -> Prng.range prng lo hi
  | Spec.Geometric mean ->
    let u = Prng.float prng in
    let m = float_of_int mean in
    let s = 2 + int_of_float (-.(m -. 2.0) *. log (1.0 -. u)) in
    min 256 (max 2 s)
  | Spec.Bimodal (lo, hi) -> if Prng.bool prng then lo else hi

let mean_size = function
  | Spec.Uniform (lo, hi) | Spec.Bimodal (lo, hi) ->
    float_of_int (lo + hi) /. 2.0
  | Spec.Geometric m -> float_of_int m

(* ALU soup with PRNG-chosen ops and immediates: locally repetitive,
   word-structured, compresses like real code rather than like noise. *)
let emit_filler b ops n =
  let open Eris.Types in
  for _ = 1 to n do
    match Prng.int ops 5 with
    | 0 -> Eris.Builder.emit b (Alui (Add, r8, r8, Prng.int ops 1024))
    | 1 -> Eris.Builder.emit b (Alui (Xor, r8, r8, Prng.int ops 1024))
    | 2 -> Eris.Builder.emit b (Alu (Add, r8, r8, r7))
    | 3 -> Eris.Builder.emit b (Alui (Or, r12, r8, Prng.int ops 1024))
    | _ -> Eris.Builder.emit b (Alu (Xor, r8, r8, r11))
  done

let next_pow2_mask n =
  let rec go m = if m + 1 >= n then m else go ((2 * m) + 1) in
  go 0

(* Emits the whole program for the given per-level trip counts.
   Returns the program plus the hot address ranges. Every PRNG stream
   restarts from the spec seed, so two calls with different [iters]
   draw identical sizes and opcodes — only trip-count immediates
   change, which is what calibration relies on. *)
let emit_program (spec : Spec.t) ~iters =
  let open Eris.Types in
  let b = Eris.Builder.create () in
  let master = Prng.create spec.Spec.seed in
  let sizes = Prng.split master in
  let ops = Prng.split master in
  let lcg_init = (Int64.to_int (Prng.next64 master) land 0x7FFFFFFF) lor 1 in
  let depth = Array.length iters in
  Eris.Builder.comment b (Spec.to_string spec);
  Eris.Builder.comment b "prologue";
  emit_const b r10 lcg_mult;
  emit_const b r7 lcg_init;
  Eris.Builder.emit b (Lui (sp, 3));
  Eris.Builder.emit b (Alui (Add, r9, r0, spec.Spec.rounds));
  (* round header *)
  Eris.Builder.place b "round";
  Eris.Builder.branch_to b Eq r9 r0 "done";
  (* cold chain: straight-line blocks, one visit per round *)
  for i = 0 to spec.Spec.cold - 1 do
    Eris.Builder.comment b (Printf.sprintf "cold block %d" i);
    let size = sample_size sizes spec.Spec.blocks in
    emit_filler b ops (size - 1);
    if i = spec.Spec.cold - 1 then Eris.Builder.jump_to b "hot"
    else Eris.Builder.jump_to b (Printf.sprintf "cold%d" (i + 1));
    if i < spec.Spec.cold - 1 then
      Eris.Builder.place b (Printf.sprintf "cold%d" (i + 1))
  done;
  Eris.Builder.place b "hot";
  Eris.Builder.comment b "hot loop nest";
  let hot_lo = Eris.Builder.position b in
  (* loop nest: level l counts down in register 1+l *)
  for l = 0 to depth - 1 do
    Eris.Builder.emit b (Alui (Add, counter l, r0, iters.(l)));
    Eris.Builder.place b (Printf.sprintf "top%d" l);
    Eris.Builder.branch_to b Eq (counter l) r0 (Printf.sprintf "end%d" l)
  done;
  (* innermost body: LCG step, dispatch, call chain *)
  Eris.Builder.emit b (Alu (Mul, r7, r7, r10));
  Eris.Builder.emit b (Alui (Add, r7, r7, lcg_add));
  if spec.Spec.fanout > 1 then begin
    let mask = next_pow2_mask spec.Spec.fanout in
    Eris.Builder.emit b (Alui (Srl, r11, r7, 16));
    Eris.Builder.emit b (Alui (And, r11, r11, mask));
    for a = 0 to spec.Spec.fanout - 2 do
      Eris.Builder.emit b (Alui (Add, r12, r0, a));
      Eris.Builder.branch_to b Eq r11 r12 (Printf.sprintf "arm%d" a)
    done;
    (* any selector >= fanout-1 takes the last arm *)
    Eris.Builder.jump_to b (Printf.sprintf "arm%d" (spec.Spec.fanout - 1));
    for a = 0 to spec.Spec.fanout - 1 do
      Eris.Builder.place b (Printf.sprintf "arm%d" a);
      let size = sample_size sizes spec.Spec.blocks in
      emit_filler b ops (size - 1);
      Eris.Builder.jump_to b "join"
    done;
    Eris.Builder.place b "join"
  end
  else begin
    let size = sample_size sizes spec.Spec.blocks in
    emit_filler b ops size
  end;
  if spec.Spec.calls > 0 then Eris.Builder.call_to b "fn1";
  emit_filler b ops 2;
  (* close the nest, innermost first *)
  for l = depth - 1 downto 0 do
    Eris.Builder.emit b (Alui (Sub, counter l, counter l, 1));
    Eris.Builder.jump_to b (Printf.sprintf "top%d" l);
    Eris.Builder.place b (Printf.sprintf "end%d" l)
  done;
  let hot_hi = Eris.Builder.position b in
  (* round footer *)
  Eris.Builder.emit b (Alui (Sub, r9, r9, 1));
  Eris.Builder.jump_to b "round";
  Eris.Builder.place b "done";
  Eris.Builder.halt b;
  (* call chain: fn1 -> fn2 -> ... , each saving ra on the sp stack *)
  let fn_lo = Eris.Builder.position b in
  for i = 1 to spec.Spec.calls do
    Eris.Builder.comment b (Printf.sprintf "call-chain fn%d" i);
    Eris.Builder.place b (Printf.sprintf "fn%d" i);
    Eris.Builder.emit b (Alui (Sub, sp, sp, 8));
    Eris.Builder.emit b (Store (W32, ra, sp, 0));
    let size = sample_size sizes spec.Spec.blocks in
    emit_filler b ops (max 1 (size - 6));
    if i < spec.Spec.calls then
      Eris.Builder.call_to b (Printf.sprintf "fn%d" (i + 1));
    Eris.Builder.emit b (Load (W32, ra, sp, 0));
    Eris.Builder.emit b (Alui (Add, sp, sp, 8));
    Eris.Builder.emit b (Jalr (r0, ra, 0))
  done;
  let fn_hi = Eris.Builder.position b in
  (Eris.Builder.to_program b, ((hot_lo, hot_hi), (fn_lo, fn_hi)))

let in_ranges ((a_lo, a_hi), (b_lo, b_hi)) addr =
  (addr >= a_lo && addr < a_hi) || (addr >= b_lo && addr < b_hi)

let measure graph trace ranges =
  let n = Cfg.Graph.num_blocks graph in
  let hot = Array.make n false in
  for i = 0 to n - 1 do
    hot.(i) <- in_ranges ranges (Cfg.Graph.block graph i).Cfg.Graph.addr
  done;
  let hot_visits = ref 0 in
  Array.iter (fun id -> if hot.(id) then incr hot_visits) trace;
  let total = Array.length trace in
  let skew =
    if total = 0 then 0.0 else float_of_int !hot_visits /. float_of_int total
  in
  let hot_blocks = Array.fold_left (fun a h -> if h then a + 1 else a) 0 hot in
  (skew, hot_blocks)

(* Rough dynamic block visits per innermost iteration: loop header,
   LCG/dispatch block, arm, join, plus the call-chain blocks. Only an
   initial guess — calibration replays correct it. *)
let visits_per_iter (spec : Spec.t) =
  4.0 +. (float_of_int spec.fanout /. 2.0) +. (1.5 *. float_of_int spec.calls)

let replay_fuel = 60_000_000

(* Splits a total trip count across [depth] levels: outer levels get
   the geometric mean, the innermost absorbs the remainder. *)
let distribute total depth =
  let cap v = max 1 (min 8000 v) in
  if depth = 0 then [||]
  else begin
    let base =
      cap (int_of_float (Float.round (total ** (1.0 /. float_of_int depth))))
    in
    let iters = Array.make depth base in
    let outer = float_of_int base ** float_of_int (depth - 1) in
    iters.(depth - 1) <- cap (int_of_float (Float.round (total /. outer)));
    iters
  end

let build (spec : Spec.t) =
  let skew = spec.Spec.skew in
  let ratio = if skew >= 0.995 then 199.0 else skew /. (1.0 -. skew) in
  let est_cold = float_of_int (spec.Spec.cold + 2 + spec.Spec.depth) in
  let v_iter = visits_per_iter spec in
  let rounds = float_of_int spec.Spec.rounds in
  (* Trip-count ceiling: keep a single run under ~150k block visits
     and ~3M interpreted instructions, whatever the spec asks for. *)
  let t_cap =
    let by_visits = ((150_000.0 /. rounds) -. est_cold) /. v_iter in
    let by_instrs =
      ((3_000_000.0 /. (rounds *. mean_size spec.Spec.blocks)) -. est_cold)
      /. v_iter
    in
    max 1.0 (min by_visits by_instrs)
  in
  let clamp t = max 1.0 (min t_cap t) in
  let attempt t =
    let iters = distribute t spec.Spec.depth in
    let program, ranges = emit_program spec ~iters in
    let graph, trace = Cfg.Build.trace_of_run ~fuel:replay_fuel program in
    let measured_skew, hot_blocks = measure graph trace ranges in
    ({ spec; program; graph; trace; measured_skew; hot_blocks }, t)
  in
  let better a b =
    if
      Float.abs (a.measured_skew -. skew) <= Float.abs (b.measured_skew -. skew)
    then a
    else b
  in
  let t0 = clamp (if spec.Spec.depth = 0 then 1.0 else ratio *. est_cold /. v_iter) in
  let first, t = attempt t0 in
  let rec calibrate n best t =
    if
      n >= 3 || spec.Spec.depth = 0
      || Float.abs (best.measured_skew -. skew) <= 0.02
    then best
    else begin
      let total = float_of_int (Array.length best.trace) in
      let h = best.measured_skew *. total in
      let c = total -. h in
      let t' = clamp (t *. (ratio *. c /. max 1.0 h)) in
      if Float.abs (t' -. t) < 0.5 then best
      else begin
        let cand, t' = attempt t' in
        calibrate (n + 1) (better cand best) t'
      end
    end
  in
  calibrate 1 first t

let program spec = (build spec).program

let scenario ?codec spec =
  let bt = build spec in
  let codec =
    match codec with
    | Some c -> c
    | None -> Compress.Registry.code_codec ~corpus:bt.program.Eris.Program.image
  in
  let info = Core.Engine.info_of_program ~codec bt.program bt.graph in
  {
    Core.Scenario.name = Spec.to_string spec;
    graph = bt.graph;
    info;
    trace = bt.trace;
    codec;
    program = Some bt.program;
  }

let image_md5 bt = Digest.to_hex (Digest.bytes bt.program.Eris.Program.image)

let trace_md5 bt =
  let buf = Buffer.create (4 * Array.length bt.trace) in
  Array.iter
    (fun id ->
      Buffer.add_string buf (string_of_int id);
      Buffer.add_char buf ';')
    bt.trace;
  Digest.to_hex (Digest.string (Buffer.contents buf))
