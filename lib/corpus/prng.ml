type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next64 t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Corpus.Prng.int: bound <= 0";
  (* The modulo bias is < bound / 2^62 — irrelevant for the shape
     parameters drawn here (all bounds are tiny). *)
  Int64.to_int (Int64.shift_right_logical (next64 t) 2) mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Corpus.Prng.range: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 high bits, the double-precision mantissa width. *)
  Int64.to_float (Int64.shift_right_logical (next64 t) 11) *. 0x1p-53

let bool t = Int64.logand (next64 t) 1L = 1L
