(** Seeded synthetic program generator.

    A {!Spec.t} is lowered through {!Eris.Builder} into a real,
    runnable ERIS-32 program: an outer round loop walks a cold chain of
    straight-line blocks once per round, then enters a hot region — a
    loop nest of the requested depth whose innermost body runs an
    in-program LCG, dispatches over [fanout] branch arms on its output,
    and descends a call chain of the requested depth. Loop trip counts
    are calibrated (≤ 3 deterministic rebuild-and-replay iterations on
    {!Eris.Machine}) so that the measured hot fraction of dynamic block
    visits lands near the requested [skew].

    Everything is a pure function of the spec: equal specs give
    byte-identical images and identical traces in any process. *)

type built = {
  spec : Spec.t;
  program : Eris.Program.t;
  graph : Cfg.Graph.t;
  trace : int array;  (** dynamic block-id trace of one full run *)
  measured_skew : float;
      (** hot fraction of [trace] visits actually achieved *)
  hot_blocks : int;  (** static blocks in the hot region *)
}

val build : Spec.t -> built
(** Generates and calibrates. The replay that produces [trace] runs on
    a fresh {!Eris.Machine}, so the trace is the real dynamic shape of
    the emitted code, not a model of it.
    @raise Invalid_argument if the program cannot be emitted (spec
    validation should make this unreachable). *)

val program : Spec.t -> Eris.Program.t

val scenario : ?codec:Compress.Codec.t -> Spec.t -> Core.Scenario.t
(** Ready-to-run scenario named by the canonical spec string (so
    tables, fleet progress lines and cache keys all show the spec).
    [codec] defaults to the image-trained code codec, same as
    {!Core.Scenario.of_program}. *)

val image_md5 : built -> string
(** Hex MD5 of the instruction image bytes. *)

val trace_md5 : built -> string
(** Hex MD5 of the block-id trace. *)
