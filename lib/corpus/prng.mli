(** Self-contained splitmix64 generator. The corpus layer must be
    bit-reproducible from a spec string alone, so it never touches the
    [Random] global state (which other layers seed, advance, or leave
    untouched depending on the code path). *)

type t

val create : int -> t
(** A fresh stream seeded from an integer. Equal seeds give equal
    streams, on every run and in every process. *)

val split : t -> t
(** An independent child stream, advancing the parent by one draw. *)

val next64 : t -> int64
(** The raw 64-bit splitmix64 output. *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is in [\[lo, hi\]] inclusive.
    @raise Invalid_argument when [hi < lo]. *)

val float : t -> float
(** Uniform in [\[0, 1)], 53 bits of precision. *)

val bool : t -> bool
