type blocks =
  | Uniform of int * int
  | Geometric of int
  | Bimodal of int * int

type t = {
  seed : int;
  depth : int;
  fanout : int;
  blocks : blocks;
  calls : int;
  skew : float;
  cold : int;
  rounds : int;
}

let default =
  {
    seed = 1;
    depth = 2;
    fanout = 2;
    blocks = Geometric 16;
    calls = 1;
    skew = 0.9;
    cold = 8;
    rounds = 8;
  }

(* Skew lives on a permille grid so that the %g rendering and
   float_of_string are exact inverses: cache keys must never depend on
   float printing subtleties. *)
let permille f = Float.of_int (int_of_float (Float.round (f *. 1000.))) /. 1000.

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_size what s =
    if s < 2 || s > 256 then err "%s block size %d not in [2, 256]" what s
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = if t.seed < 0 then err "seed %d is negative" t.seed else Ok () in
  let* () =
    if t.depth < 0 || t.depth > 6 then err "depth %d not in [0, 6]" t.depth
    else Ok ()
  in
  let* () =
    if t.fanout < 1 || t.fanout > 8 then err "fanout %d not in [1, 8]" t.fanout
    else Ok ()
  in
  let* () =
    match t.blocks with
    | Geometric m -> check_size "geo" m
    | Uniform (lo, hi) | Bimodal (lo, hi) ->
      let* () = check_size "blocks" lo in
      let* () = check_size "blocks" hi in
      if hi < lo then err "blocks range %d-%d is inverted" lo hi else Ok ()
  in
  let* () =
    if t.calls < 0 || t.calls > 6 then err "calls %d not in [0, 6]" t.calls
    else Ok ()
  in
  let skew = permille t.skew in
  let* () =
    if skew < 0.0 || skew > 0.995 then err "skew %g not in [0, 0.995]" t.skew
    else Ok ()
  in
  let* () =
    if t.cold < 1 || t.cold > 64 then err "cold %d not in [1, 64]" t.cold
    else Ok ()
  in
  let* () =
    if t.rounds < 1 || t.rounds > 500 then
      err "rounds %d not in [1, 500]" t.rounds
    else Ok ()
  in
  Ok { t with skew }

let prefix = "gen:"
let is_spec s = String.starts_with ~prefix s

let blocks_to_string = function
  | Uniform (lo, hi) -> Printf.sprintf "uni:%d-%d" lo hi
  | Geometric m -> Printf.sprintf "geo:%d" m
  | Bimodal (lo, hi) -> Printf.sprintf "bim:%d-%d" lo hi

let to_string t =
  Printf.sprintf
    "gen:seed=%d,depth=%d,fanout=%d,blocks=%s,calls=%d,skew=%g,cold=%d,rounds=%d"
    t.seed t.depth t.fanout (blocks_to_string t.blocks) t.calls t.skew t.cold
    t.rounds

let parse_range what v =
  match String.index_opt v '-' with
  | Some i when i > 0 && i < String.length v - 1 -> (
    match
      ( int_of_string_opt (String.sub v 0 i),
        int_of_string_opt (String.sub v (i + 1) (String.length v - i - 1)) )
    with
    | Some lo, Some hi -> Ok (lo, hi)
    | _ -> Error (Printf.sprintf "bad %s range %S" what v))
  | _ -> Error (Printf.sprintf "bad %s range %S (want LO-HI)" what v)

let parse_blocks v =
  let ( let* ) = Result.bind in
  match String.index_opt v ':' with
  | Some i -> (
    let kind = String.sub v 0 i in
    let rest = String.sub v (i + 1) (String.length v - i - 1) in
    match kind with
    | "uni" ->
      let* lo, hi = parse_range "uni" rest in
      Ok (Uniform (lo, hi))
    | "geo" -> (
      match int_of_string_opt rest with
      | Some m -> Ok (Geometric m)
      | None -> Error (Printf.sprintf "bad geo mean %S" rest))
    | "bim" ->
      let* lo, hi = parse_range "bim" rest in
      Ok (Bimodal (lo, hi))
    | other -> Error (Printf.sprintf "unknown blocks kind %S" other))
  | None -> Error (Printf.sprintf "bad blocks %S (want uni:|geo:|bim:)" v)

let of_string s =
  let ( let* ) = Result.bind in
  if not (is_spec s) then Error (Printf.sprintf "%S does not start with gen:" s)
  else begin
    let body = String.sub s 4 (String.length s - 4) in
    let fields =
      if body = "" then [] else String.split_on_char ',' body
    in
    (* blocks=uni:8-40 survives the comma split intact: the only commas
       in the grammar are field separators. *)
    let parse_int what v =
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "bad %s %S" what v)
    in
    let* t =
      List.fold_left
        (fun acc field ->
          let* t = acc in
          match String.index_opt field '=' with
          | None -> Error (Printf.sprintf "bad field %S (want key=value)" field)
          | Some i ->
            let k = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            (match k with
            | "seed" ->
              let* n = parse_int "seed" v in
              Ok { t with seed = n }
            | "depth" ->
              let* n = parse_int "depth" v in
              Ok { t with depth = n }
            | "fanout" ->
              let* n = parse_int "fanout" v in
              Ok { t with fanout = n }
            | "blocks" ->
              let* b = parse_blocks v in
              Ok { t with blocks = b }
            | "calls" ->
              let* n = parse_int "calls" v in
              Ok { t with calls = n }
            | "skew" -> (
              match float_of_string_opt v with
              | Some f -> Ok { t with skew = f }
              | None -> Error (Printf.sprintf "bad skew %S" v))
            | "cold" ->
              let* n = parse_int "cold" v in
              Ok { t with cold = n }
            | "rounds" ->
              let* n = parse_int "rounds" v in
              Ok { t with rounds = n }
            | other -> Error (Printf.sprintf "unknown gen: key %S" other)))
        (Ok default) fields
    in
    validate t
  end

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Corpus.Spec.of_string_exn: %s" msg)
