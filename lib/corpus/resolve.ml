type multi = {
  quantum : int;
  seed : int;
  jitter : float;
  tasks : string list;
}

let is_gen = Spec.is_spec
let is_multi s = String.starts_with ~prefix:"multi:" s
let is_spec s = is_gen s || is_multi s

let permille f = Float.of_int (int_of_float (Float.round (f *. 1000.))) /. 1000.

let canonical_task t = if is_gen t then Spec.to_string (Spec.of_string_exn t) else t

let multi_to_string m =
  Printf.sprintf "multi:quantum=%d,seed=%d,jitter=%g;%s" m.quantum m.seed
    m.jitter
    (String.concat "+" (List.map canonical_task m.tasks))

let multi_of_string s =
  let ( let* ) = Result.bind in
  if not (is_multi s) then
    Error (Printf.sprintf "%S does not start with multi:" s)
  else begin
    let body = String.sub s 6 (String.length s - 6) in
    let* header, tasks_str =
      match String.index_opt body ';' with
      | Some i ->
        Ok
          ( String.sub body 0 i,
            String.sub body (i + 1) (String.length body - i - 1) )
      | None -> Error "multi: spec needs ';' between header and tasks"
    in
    let* quantum, seed, jitter =
      List.fold_left
        (fun acc field ->
          let* q, sd, j = acc in
          match String.index_opt field '=' with
          | None -> Error (Printf.sprintf "bad field %S (want key=value)" field)
          | Some i ->
            let k = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            (match k with
            | "quantum" -> (
              match int_of_string_opt v with
              | Some n when n >= 1 && n <= 100_000 -> Ok (Some n, sd, j)
              | Some n -> Error (Printf.sprintf "quantum %d not in [1, 100000]" n)
              | None -> Error (Printf.sprintf "bad quantum %S" v))
            | "seed" -> (
              match int_of_string_opt v with
              | Some n when n >= 0 -> Ok (q, n, j)
              | Some n -> Error (Printf.sprintf "seed %d is negative" n)
              | None -> Error (Printf.sprintf "bad seed %S" v))
            | "jitter" -> (
              match float_of_string_opt v with
              | Some f when f >= 0.0 && f < 1.0 -> Ok (q, sd, permille f)
              | Some f -> Error (Printf.sprintf "jitter %g not in [0, 1)" f)
              | None -> Error (Printf.sprintf "bad jitter %S" v))
            | other -> Error (Printf.sprintf "unknown multi: key %S" other)))
        (Ok (None, 1, 0.0))
        (String.split_on_char ',' header)
    in
    let* quantum =
      match quantum with
      | Some q -> Ok q
      | None -> Error "multi: spec needs quantum=N"
    in
    let tasks = String.split_on_char '+' tasks_str in
    let* () =
      if List.length tasks < 2 then Error "multi: spec needs at least 2 tasks"
      else Ok ()
    in
    let* tasks =
      List.fold_left
        (fun acc t ->
          let* ts = acc in
          if t = "" then Error "multi: spec has an empty task"
          else if is_multi t then Error "multi: specs do not nest"
          else if is_gen t then
            let* sp = Spec.of_string t in
            Ok (Spec.to_string sp :: ts)
          else Ok (t :: ts))
        (Ok []) tasks
    in
    Ok { quantum; seed; jitter; tasks = List.rev tasks }
  end

let multi_of_string_exn s =
  match multi_of_string s with
  | Ok m -> m
  | Error msg ->
    invalid_arg (Printf.sprintf "Corpus.Resolve.multi_of_string_exn: %s" msg)

let canonicalize ~known s =
  if is_gen s then Result.map Spec.to_string (Spec.of_string s)
  else if is_multi s then begin
    match multi_of_string s with
    | Error _ as e -> e
    | Ok m -> (
      match List.find_opt (fun t -> (not (is_gen t)) && not (known t)) m.tasks with
      | Some t -> Error (Printf.sprintf "unknown task workload %S" t)
      | None -> Ok (multi_to_string m))
  end
  else if known s then Ok s
  else Error (Printf.sprintf "unknown workload %S" s)

let multitask ~lookup ?codec m =
  let resolve_task t =
    if is_gen t then Gen.scenario ?codec (Spec.of_string_exn t) else lookup t
  in
  let scenarios = List.map resolve_task m.tasks in
  Multitask.compose
    ~name:(multi_to_string m)
    ~quantum:m.quantum ~seed:m.seed ~jitter:m.jitter scenarios

let scenario ~lookup ?codec s =
  if is_gen s then Gen.scenario ?codec (Spec.of_string_exn s)
  else if is_multi s then
    (multitask ~lookup ?codec (multi_of_string_exn s)).Multitask.scenario
  else lookup s
