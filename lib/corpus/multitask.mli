(** Preemptive multi-tasking scenarios.

    Composes several scenarios into one: block ids and addresses are
    offset into disjoint ranges, per-block info is concatenated, and
    the task traces are interleaved by a round-robin scheduler that
    preempts the running task every [quantum] block visits (a seeded
    jitter on the quantum models irregular interrupt arrivals — the
    stream of preemption points is still fully deterministic for a
    given seed). The composed scenario runs on the unmodified
    {!Core.Engine}, so every retention policy, budget and codec path
    applies as-is — except that now the decompressed area and its
    budget are shared, and a policy evicting a block may well be
    evicting {e another task's} working set. That contention is what
    the paper's three-thread model never faced. *)

type task = {
  name : string;
  first_block : int;  (** id of the task's first block in the union *)
  n_blocks : int;
  trace_len : int;  (** visits this task contributes *)
}

type t = {
  name : string;
  scenario : Core.Scenario.t;  (** the composed union scenario *)
  tasks : task array;
  owner : int array;  (** composed block id -> task index *)
}

val compose :
  ?name:string ->
  quantum:int ->
  ?seed:int ->
  ?jitter:float ->
  Core.Scenario.t list ->
  t
(** Builds the union scenario. [quantum] is the preemption interval in
    block visits; [jitter] (default 0, range [0, 1\)) scales a
    seeded ±[jitter]·[quantum] perturbation applied to every slice.
    Tasks that exhaust their trace drop out of the rotation; the
    composed trace ends when every task has finished.
    @raise Invalid_argument on an empty task list, [quantum < 1], or
    [jitter] outside [0, 1). *)

(** Per-task tallies attributed by block ownership while replaying the
    composed run's event stream. *)
type task_stats = {
  task : task;
  visits : int;
  demand_decompressions : int;
  discards : int;
  evictions : int;
  evicted_while_inactive : int;
      (** this task's copies discarded or evicted while {e another}
          task was executing — the cross-task contention signal *)
}

val run :
  ?profile:string ->
  ?sink:Sim.Events.sink ->
  ?registry:Sim.Metrics.t ->
  t ->
  Core.Policy.t ->
  Core.Metrics.t * task_stats array
(** {!Core.Scenario.run} on the composed scenario, with an attribution
    sink teed in front of [sink]. *)
