(** Generator specs: the compact string form under which a synthetic
    program joins everything that already consumes workload {e names} —
    fleet job keys, the service wire, sweep matrices. The canonical
    rendering is what gets hashed into cache keys, so equal specs must
    print identically; {!of_string} therefore canonicalizes (fixed
    field order, permille-rounded skew) rather than preserving the
    input spelling. *)

(** Block-size distribution, in instructions per basic block. *)
type blocks =
  | Uniform of int * int  (** [uni:LO-HI], inclusive *)
  | Geometric of int  (** [geo:MEAN], mean size *)
  | Bimodal of int * int  (** [bim:LO-HI], half small, half large *)

type t = {
  seed : int;  (** PRNG seed; the only source of randomness *)
  depth : int;  (** loop nesting depth, 0–6 *)
  fanout : int;  (** branch arms in the hot dispatch, 1–8 *)
  blocks : blocks;
  calls : int;  (** call-chain depth from the hot loop body, 0–6 *)
  skew : float;  (** requested hot fraction of block visits, 0–0.995 *)
  cold : int;  (** cold-chain blocks walked once per round, 1–64 *)
  rounds : int;  (** outer repetitions, 1–500 *)
}

val default : t
(** [gen:seed=1,depth=2,fanout=2,blocks=geo:16,calls=1,skew=0.9,cold=8,rounds=8] *)

val validate : t -> (t, string) result
(** Range-checks every field and canonicalizes [skew] to a permille
    grid (so print → parse is exact). *)

val is_spec : string -> bool
(** True when the string carries the [gen:] prefix. *)

val to_string : t -> string
(** Canonical rendering: every field, fixed order, [gen:] prefix. *)

val of_string : string -> (t, string) result
(** Parses [gen:k=v,…]. Fields may appear in any order; missing fields
    take their {!default}; unknown keys are errors. The result is
    validated and canonical, so
    [to_string ∘ of_string ∘ to_string = to_string]. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on a malformed spec. *)
