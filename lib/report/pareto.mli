(** Pareto fronts over named objective dimensions.

    Every objective is minimized; callers flip signs (or report
    savings as deficits) for maximized quantities. Points carry their
    coordinates as [(dimension, value)] lists so the report layer
    stays decoupled from whichever cost vocabulary produced them —
    cycles, nanojoules, peak bytes, or anything a future profile
    invents. *)

type point = {
  label : string;  (** row label, e.g. ["fir k=8"] *)
  values : (string * float) list;
      (** objective name -> value; every point in one comparison must
          carry the same dimension set *)
}

val value : point -> string -> float
(** Coordinate lookup.
    @raise Invalid_argument if the point lacks the dimension. *)

val dominates : point -> point -> bool
(** [dominates a b] iff [a] is no worse than [b] in every dimension
    and strictly better in at least one.
    @raise Invalid_argument if the two points carry different
    dimension sets. *)

val front : point list -> point list
(** The non-dominated subset, in input order. Duplicate coordinates
    never dominate each other, so equal points all survive. *)

val table :
  title:string -> ?fmt:(string -> float -> string) -> point list -> Table.t
(** One row per point in input order: the label, one column per
    dimension (in the first point's dimension order), and a [pareto]
    column marking front members with [*]. [fmt] renders a value given
    its dimension name (default: {!Table.fmt_float} with 1 decimal).
    Markdown and CSV renderings come free via {!Table.to_markdown} and
    {!Table.to_csv}.
    @raise Invalid_argument on an empty point list or inconsistent
    dimension sets. *)
