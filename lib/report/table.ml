type align = Left | Right

type t = {
  title : string;
  columns : (string * align) list;
  mutable rev_rows : string list list;
}

let create ~title ~columns = { title; columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Report.Table.add_row: %d cells for %d columns"
         (List.length row) (List.length t.columns));
  t.rev_rows <- row :: t.rev_rows

let add_rows t rows = List.iter (add_row t) rows

let title t = t.title
let columns t = List.map fst t.columns
let rows t = List.rev t.rev_rows

let cell t ~row ~col =
  let ri = row in
  let rows = rows t in
  if ri < 0 || ri >= List.length rows then raise Not_found;
  let row = List.nth rows ri in
  let rec find cols cells =
    match (cols, cells) with
    | (name, _) :: _, c :: _ when name = col -> c
    | _ :: cols, _ :: cells -> find cols cells
    | _, _ -> raise Not_found
  in
  find t.columns row

let render t =
  let headers = List.map fst t.columns in
  let all_rows = headers :: rows t in
  let widths =
    List.mapi
      (fun i _ ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          0 all_rows)
      t.columns
  in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_row row =
    List.map2
      (fun (cell, (_, align)) width -> pad align width cell)
      (List.combine row t.columns)
      widths
    |> String.concat "  "
  in
  let sep =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  (* Header cells go through [csv_escape] too: a column name holding a
     comma must not silently widen the header row. *)
  let line cells = String.concat "," (List.map csv_escape cells) in
  String.concat "\n" (line (columns t) :: List.map line (rows t)) ^ "\n"

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_jsonl t =
  let cols = columns t in
  let line row =
    "{"
    ^ String.concat ","
        (List.map2
           (fun col cell ->
             Printf.sprintf {|"%s":"%s"|} (json_escape col) (json_escape cell))
           cols row)
    ^ "}"
  in
  String.concat "\n" (List.map line (rows t)) ^ "\n"

let markdown_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '|' -> Buffer.add_string buf "\\|"
      | '\n' | '\r' -> Buffer.add_string buf "<br>"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_markdown t =
  let headers = List.map (fun (h, _) -> markdown_escape h) t.columns in
  let body = List.map (List.map markdown_escape) (rows t) in
  let widths =
    List.mapi
      (fun i _ ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          3 (* a divider cell is at least --- *)
          (headers :: body))
      t.columns
  in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let line cells =
    "| "
    ^ String.concat " | "
        (List.map2
           (fun (cell, (_, align)) width -> pad align width cell)
           (List.combine cells t.columns)
           widths)
    ^ " |"
  in
  let divider =
    "|"
    ^ String.concat "|"
        (List.map2
           (fun (_, align) width ->
             (* Markdown alignment markers: ---- for left, ---: for
                right. *)
             match align with
             | Left -> " " ^ String.make width '-' ^ " "
             | Right -> " " ^ String.make (width - 1) '-' ^ ": ")
           t.columns widths)
    ^ "|"
  in
  String.concat "\n" (line headers :: divider :: List.map line body) ^ "\n"

let print t =
  print_string (render t);
  print_newline ()

let fmt_int = string_of_int
let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let fmt_pct ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (100.0 *. v)
let fmt_bytes n = Printf.sprintf "%dB" n
