(** Plain-text tables for the experiment harness (the "rows the paper
    reports"). *)

type align =
  | Left
  | Right

type t

val create : title:string -> columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the arity does not match the columns. *)

val add_rows : t -> string list list -> unit

val title : t -> string
val columns : t -> string list
val rows : t -> string list list

val cell : t -> row:int -> col:string -> string
(** @raise Not_found for unknown column names or row indexes. *)

val render : t -> string
(** ASCII rendering with a title line, a header and aligned columns. *)

val to_csv : t -> string
(** RFC-4180 style; header and data cells containing commas, double
    quotes or newlines are quoted and escaped. *)

val json_escape : string -> string
(** Escapes a string for inclusion inside a JSON string literal. *)

val to_jsonl : t -> string
(** One JSON object per data row, keyed by column name — the format
    consumed by log pipelines, and the one {!Sim.Metrics} and the
    event sinks reuse. The table title is not included. *)

val to_markdown : t -> string
(** GitHub-flavored Markdown: pipe-aligned columns (padded so the raw
    text is readable too), alignment markers from the column spec
    ([---:] for right-aligned), cells with [|] escaped and newlines
    turned into [<br>]. The table title is not included. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** Formatting helpers used across experiments. *)

val fmt_int : int -> string
val fmt_float : ?decimals:int -> float -> string
val fmt_pct : ?decimals:int -> float -> string
(** [fmt_pct 0.123] = ["12.3%"]. *)

val fmt_bytes : int -> string
