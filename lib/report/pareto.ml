type point = { label : string; values : (string * float) list }

let dims p = List.map fst p.values

let value p d =
  match List.assoc_opt d p.values with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Report.Pareto: point %S has no dimension %S" p.label d)

let check_same_dims a b =
  if dims a <> dims b then
    invalid_arg
      (Printf.sprintf
         "Report.Pareto: points %S and %S carry different dimensions" a.label
         b.label)

let dominates a b =
  check_same_dims a b;
  let no_worse =
    List.for_all (fun (d, va) -> va <= value b d) a.values
  in
  let better = List.exists (fun (d, va) -> va < value b d) a.values in
  no_worse && better

let front points =
  List.filter
    (fun p -> not (List.exists (fun q -> dominates q p) points))
    points

let table ~title ?(fmt = fun _ v -> Table.fmt_float ~decimals:1 v) points =
  match points with
  | [] -> invalid_arg "Report.Pareto.table: no points"
  | first :: rest ->
    List.iter (check_same_dims first) rest;
    let dim_names = dims first in
    let t =
      Table.create ~title
        ~columns:
          (("point", Table.Left)
          :: List.map (fun d -> (d, Table.Right)) dim_names
          @ [ ("pareto", Table.Left) ])
    in
    let on_front =
      let f = front points in
      fun p -> List.memq p f
    in
    List.iter
      (fun p ->
        Table.add_row t
          ((p.label :: List.map (fun (d, v) -> fmt d v) p.values)
          @ [ (if on_front p then "*" else "") ]))
      points;
    t
