let events () =
  let g = Paper_figures.fig1 () in
  let sc = Paper_figures.scenario ~name:"fig1" g ~trace:Paper_figures.fig1_trace in
  let events, log = Util.collect_events () in
  let _ = Core.Scenario.run ~log sc (Core.Policy.on_demand ~k:2) in
  List.rev !events

(* B1's copy must be discarded after B3 executes and before B4 does. *)
let holds () =
  let rec scan saw_b3_exec discarded_b1 = function
    | [] -> false
    | ev :: rest -> (
      match (ev : Core.Engine.event) with
      | Exec { block = 3; _ } -> scan true discarded_b1 rest
      | Discard { block = 1; _ } -> scan saw_b3_exec saw_b3_exec rest
      | Exec { block = 4; _ } -> discarded_b1
      | Exec _ | Exception _ | Demand_decompress _ | Prefetch_issue _
      | Stall _ | Patch _ | Unpatch _ | Discard _ | Evict _
      | Recompress_queued _ | Flush _ ->
        scan saw_b3_exec discarded_b1 rest)
  in
  scan false false (events ())

let run () =
  let t =
    Report.Table.create
      ~title:
        "E1 / Figure 1: 2-edge algorithm compresses B1 on entering B4 \
         (trace B0 -a-> B1 ... B3 -b-> B4, k=2)"
      ~columns:[ ("cycle", Report.Table.Right); ("event", Report.Table.Left) ]
  in
  List.iter
    (fun ev ->
      Report.Table.add_row t
        [ string_of_int (Util.event_time ev); Util.event_to_string ev ])
    (events ());
  Report.Table.add_row t
    [ ""; Printf.sprintf "verdict: B1 compressed before B4 executes = %b" (holds ()) ];
  t
