(** E18: the energy/cycles Pareto sweep.

    Under the paper's cycle-only cost model the energy-optimal k and
    the cycles-optimal k coincide by construction (energy is zero
    everywhere). Under a device profile with real coefficients they
    can diverge: larger k keeps more decompressed copies resident,
    which costs RAM leakage energy by the byte-cycle even while it
    saves decompression cycles. This experiment sweeps every workload
    over the k grid under the {!profile} device profile and reports,
    per workload, the cycles-optimal and energy-optimal k and the
    memory x cycles x energy Pareto front. *)

val profile : string
(** ["sram-heavy"] — the leakage-dominated profile where the two
    optima separate. *)

val default_ks : int list
(** [[1; 2; 4; 8; 16; 32]] — the same grid as E6. *)

type optimum = {
  workload : string;
  cycles_opt_k : int;  (** k minimizing total cycles (smallest on ties) *)
  energy_opt_k : int;  (** k minimizing total energy (smallest on ties) *)
}

val optima : ?ks:int list -> unit -> optimum list
(** One entry per suite workload, in suite order. *)

val divergent : optimum list -> optimum list
(** The workloads whose energy-optimal k differs from their
    cycles-optimal k. *)

val run : unit -> Report.Table.t
(** The registry runner: full grid, one row per workload x k with
    cycles, energy, peak bytes, a Pareto-front marker and the
    per-workload optima. *)

val run_with : ks:int list -> unit -> Report.Table.t
(** Same table over a caller-chosen k grid (smoke runs use a short
    one). *)
