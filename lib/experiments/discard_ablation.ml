(* Replays the engine's allocation/free sequence against a first-fit
   heap sized to the run's own peak, measuring how fragmented the
   decompressed area gets. *)
let fragmentation sc policy =
  let events, log = Util.collect_events () in
  let m = Core.Scenario.run ~log sc policy in
  let peak = max m.Core.Metrics.peak_decompressed_bytes 1 in
  let heap = Memsim.Heap.create ~capacity:peak in
  let offsets = Hashtbl.create 16 in
  let usize b = sc.Core.Scenario.info.(b).Core.Engine.uncompressed_bytes in
  let max_frag = ref 0.0 and failures = ref 0 in
  let alloc b =
    if not (Hashtbl.mem offsets b) then begin
      match Memsim.Heap.alloc heap (usize b) with
      | Some off -> Hashtbl.replace offsets b off
      | None -> incr failures
    end
  in
  let free b =
    match Hashtbl.find_opt offsets b with
    | Some off ->
      Memsim.Heap.free heap off;
      Hashtbl.remove offsets b
    | None -> ()
  in
  List.iter
    (fun ev ->
      (match (ev : Core.Engine.event) with
      | Demand_decompress { block; _ } | Prefetch_issue { block; _ } ->
        alloc block
      | Discard { block; _ } | Evict { block; _ } -> free block
      | Exec _ | Exception _ | Stall _ | Patch _ | Unpatch _
      | Recompress_queued _ | Flush _ -> ());
      let f = Memsim.Heap.external_fragmentation heap in
      if f > !max_frag then max_frag := f)
    (List.rev !events);
  (!max_frag, !failures)

let run () =
  let t =
    Report.Table.create
      ~title:
        "E9: Discard (paper's s5 implementation) vs. Recompress (s3 \
         narrative), k=4 on-demand"
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("mode", Report.Table.Left);
          ("overhead", Report.Table.Right);
          ("avg mem saving", Report.Table.Right);
          ("comp thread busy", Report.Table.Right);
          ("max frag", Report.Table.Right);
          ("alloc failures", Report.Table.Right);
        ]
  in
  List.iter
    (fun sc ->
      List.iter
        (fun (mname, mode) ->
          let policy = Core.Policy.make ~mode ~compress_k:4 () in
          let m = Util.run sc policy in
          let frag, failures = fragmentation sc policy in
          Report.Table.add_row t
            [
              sc.Core.Scenario.name;
              mname;
              Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
              Report.Table.fmt_pct (Core.Metrics.avg_memory_saving m);
              string_of_int m.Core.Metrics.comp_thread_busy_cycles;
              Report.Table.fmt_pct frag;
              string_of_int failures;
            ])
        [ ("discard", Core.Policy.Discard); ("recompress", Core.Policy.Recompress) ])
    (Util.scenarios ());
  t
