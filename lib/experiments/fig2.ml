let trace = [| 0; 1; 3; 6; 7; 9 |]

let events () =
  let g = Paper_figures.fig2 () in
  let sc = Paper_figures.scenario ~name:"fig2" g ~trace in
  let events, log = Util.collect_events () in
  let _ =
    Core.Scenario.run ~log sc (Core.Policy.pre_all ~k:100 ~lookahead:3)
  in
  List.rev !events

(* The prefetch of B7 must be issued after B1 executes and before B3
   does (i.e., on the edge leaving B1). *)
let holds () =
  let rec scan after_b1 = function
    | [] -> false
    | ev :: rest -> (
      match (ev : Core.Engine.event) with
      | Exec { block = 1; _ } -> scan true rest
      | Prefetch_issue { block = 7; _ } -> after_b1
      | Exec { block = 3; _ } -> false
      | Exec _ | Exception _ | Demand_decompress _ | Prefetch_issue _
      | Stall _ | Patch _ | Unpatch _ | Discard _ | Evict _
      | Recompress_queued _ | Flush _ ->
        scan after_b1 rest)
  in
  scan false (events ())

let run () =
  let t =
    Report.Table.create
      ~title:
        "E2 / Figure 2: with k=3, B7 is pre-decompressed when execution \
         exits B1 (d(B1 exit -> B7) = 3: B1->B3->B6->B7)"
      ~columns:[ ("cycle", Report.Table.Right); ("event", Report.Table.Left) ]
  in
  List.iter
    (fun ev ->
      Report.Table.add_row t
        [ string_of_int (Util.event_time ev); Util.event_to_string ev ])
    (events ());
  Report.Table.add_row t
    [ ""; Printf.sprintf "verdict: B7 prefetched on exiting B1 = %b" (holds ()) ];
  t
