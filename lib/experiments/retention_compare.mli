(** E17: the pluggable retention policies (k-edge, loop-aware, clock,
    pin-hot) head to head over the whole workload suite at one k —
    aggregate stalls, patch-backs, discards, peak decompressed bytes
    and mean overhead per policy. Exercises the {!Residency} layer the
    way a policy author would. *)

type agg = {
  mutable total_cycles : int;
  mutable stall_cycles : int;
  mutable exceptions : int;
  mutable patches : int;
  mutable discards : int;
  mutable peak_bytes : int;  (** max over the suite *)
  mutable overhead_sum : float;
  mutable runs : int;
}

val policies : string list
(** CLI-facing names, in table order. *)

val retention_of_name : string -> Residency.Policy.spec
(** The profile-free policies ([kedge], [loop-aware], [clock]).
    @raise Invalid_argument for unknown names (including [pin-hot],
    which needs a profile — use {!retention_for}). *)

val retention_for : Core.Scenario.t -> string -> Residency.Policy.spec
(** The spec a named policy uses for one scenario (pin-hot derives its
    pinned set from the scenario's own profile).
    @raise Invalid_argument for unknown names. *)

val job_retention_of_name : string -> Fleet.Job.retention
(** The serializable {!Fleet.Job} twin of {!retention_for}: same four
    names, pin-hot expressed as a fraction the job re-derives from the
    scenario profile. @raise Invalid_argument for unknown names. *)

val rows : unit -> (string * agg) list
(** Aggregates per policy across the suite. *)

val run : unit -> Report.Table.t
