type step = { label : string; action : string }

type outcome = {
  steps : (step * string) list;  (* snapshot summary per step *)
  final_ok : bool;
}

let summary layout =
  let resident = ref [] in
  for b = Memsim.Layout.num_blocks layout - 1 downto 0 do
    if Memsim.Layout.resident layout b then resident := b :: !resident
  done;
  Printf.sprintf "resident: {%s}; decompressed %dB; footprint %dB"
    (String.concat ", " (List.map (Printf.sprintf "B%d'") !resident))
    (Memsim.Layout.decompressed_bytes layout)
    (Memsim.Layout.footprint layout)

let replay () =
  let g = Paper_figures.fig5 () in
  let sc = Paper_figures.scenario ~name:"fig5" g ~trace:Paper_figures.fig5_trace in
  let csizes = Array.map (fun i -> i.Core.Engine.compressed_bytes) sc.info in
  let usizes = Array.map (fun i -> i.Core.Engine.uncompressed_bytes) sc.info in
  let layout =
    Memsim.Layout.create ~compressed_sizes:csizes ~uncompressed_sizes:usizes ()
  in
  let kedge = Memsim.Kedge.create ~blocks:4 ~k:2 () in
  let steps = ref [] in
  let patched_back = ref 0 in
  let snap label action =
    steps := ({ label; action }, summary layout) :: !steps
  in
  snap "(1)" "initial image: all blocks compressed, PC at B0";
  (* Replay the trace against the layout, §5 narrative. *)
  let trace = Paper_figures.fig5_trace in
  let stepno = ref 1 in
  Array.iteri
    (fun i b ->
      let describe = ref [] in
      let note s = describe := s :: !describe in
      (* k-edge deletions on this edge traversal. *)
      if i > 0 then
        List.iter
          (fun d ->
            if d <> b && Memsim.Layout.resident layout d then begin
              let patches = Memsim.Layout.discard layout d in
              patched_back := !patched_back + patches;
              Memsim.Kedge.untrack kedge ~block:d;
              note
                (Printf.sprintf "delete B%d' (%d branch sites patched back)" d
                   patches)
            end)
          (Memsim.Kedge.due kedge ~step:i);
      (* Arrival. *)
      (if Memsim.Layout.resident layout b then begin
         match i with
         | 0 -> ()
         | _ ->
           let site = trace.(i - 1) in
           if Memsim.Layout.record_branch layout ~target:b ~site then
             note
               (Printf.sprintf
                  "exception; handler patches branch in B%d' to B%d'" site b)
           else note (Printf.sprintf "direct branch to B%d', no exception" b)
       end
       else begin
         (match Memsim.Layout.decompress layout b with
         | Ok _ -> ()
         | Error `No_space -> failwith "fig5: unexpected allocation failure");
         note (Printf.sprintf "exception; decompress B%d into B%d'" b b);
         if i > 0 then begin
           let site = trace.(i - 1) in
           if Memsim.Layout.record_branch layout ~target:b ~site then
             note (Printf.sprintf "patch branch in B%d' to B%d'" site b)
         end
       end);
      Memsim.Kedge.track kedge ~block:b ~step:i;
      incr stepno;
      snap
        (Printf.sprintf "(%d)" !stepno)
        (Printf.sprintf "execute B%d: %s" b
           (String.concat "; " (List.rev !describe))))
    trace;
  let final_ok =
    (not (Memsim.Layout.resident layout 0))
    && Memsim.Layout.resident layout 1
    && Memsim.Layout.resident layout 3
    && (not (Memsim.Layout.resident layout 2))
    && !patched_back = 1
    && Memsim.Layout.compressed_area_bytes layout
       = Array.fold_left ( + ) 0 csizes
  in
  { steps = List.rev !steps; final_ok }

let holds () = (replay ()).final_ok

let run () =
  let { steps; final_ok } = replay () in
  let t =
    Report.Table.create
      ~title:
        "E5 / Figure 5: memory image over the access pattern B0, B1, B0, \
         B1, B3 (k=2)"
      ~columns:
        [
          ("step", Report.Table.Left);
          ("action", Report.Table.Left);
          ("memory state", Report.Table.Left);
        ]
  in
  List.iter
    (fun ({ label; action }, state) ->
      Report.Table.add_row t [ label; action; state ])
    steps;
  Report.Table.add_row t
    [
      "";
      Printf.sprintf
        "verdict: final residents {B1', B3'}, B0' deleted with 1 patch-back \
         = %b"
        final_ok;
      "";
    ];
  t
