(* One job per (workload, variant); the block-granular baseline uses
   the workload's own positional-Huffman codec, the line rows pair
   each line size with its matched BDI and CPack codecs. Everything
   funnels through the fleet, so line jobs exercise the v3 content
   key (line_size is part of it) and cache/parallelism apply. *)

let profile = "sram-heavy"
let k = 8

let variants =
  ("block", "code", None)
  :: List.concat_map
       (fun l ->
         [
           (Printf.sprintf "line %dB" l, Compress.Linecodec.name Bdi l, Some l);
           ( Printf.sprintf "line %dB" l,
             Compress.Linecodec.name Cpack l,
             Some l );
         ])
       Compress.Linecodec.line_sizes

let jobs () =
  List.concat_map
    (fun sc ->
      List.map
        (fun (_, codec, line_size) ->
          Fleet.Job.make ~codec ~profile ?line_size
            ~scenario:sc.Core.Scenario.name ~k ())
        variants)
    (Util.scenarios ())

let run () =
  let results = Util.fleet_sweep (jobs ()) in
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E19: line- vs block-granular residency (k=%d, %s device \
            profile); ratio = resident compressed image / original"
           k profile)
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("granularity", Report.Table.Left);
          ("codec", Report.Table.Left);
          ("ratio", Report.Table.Right);
          ("cycles", Report.Table.Right);
          ("overhead", Report.Table.Right);
          ("demand decs", Report.Table.Right);
          ("energy nJ", Report.Table.Right);
        ]
  in
  (* fleet_sweep preserves submission order, so the variant labels
     line up with the results by position. *)
  List.iteri
    (fun i ((job : Fleet.Job.t), (m : Core.Metrics.t)) ->
      let granularity, _, _ = List.nth variants (i mod List.length variants) in
      let ratio =
        float_of_int m.compressed_area_bytes /. float_of_int m.original_bytes
      in
      Report.Table.add_row t
        [
          job.scenario;
          granularity;
          job.codec;
          Report.Table.fmt_float ~decimals:3 ratio;
          string_of_int m.total_cycles;
          Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
          string_of_int m.demand_decompressions;
          string_of_int m.energy_nj;
        ])
    results;
  t
