(** E21: preemptive multitasking contention. Suite-workload pairs
    interleaved by {!Corpus.Multitask} under a shared decompressed-area
    budget, swept over preemption quanta and retention policies; the
    cross-eviction column isolates evictions one task inflicts on the
    other's working set. *)

val compress_k : int
val quanta : int list
val retentions : string list
val combos : string list list

type row = {
  tasks : string list;
  quantum : int;
  retention : string;
  metrics : Core.Metrics.t;
  stats : Corpus.Multitask.task_stats array;
}

val rows : unit -> row list
val run : unit -> Report.Table.t
