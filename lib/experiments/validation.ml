let compress_k = 4

type row = {
  workload : string;
  engine_demand : int;
  runtime_decompressions : int;
  runtime_traps : int;
  engine_discards : int;
  runtime_deletions : int;
  checksum_ok : bool;
}

let rows () =
  (* The timing-model half of every row is a fleet sweep (parallel,
     cacheable); the executable-runtime half stays inline — it is the
     reference being validated, not a cacheable metric. *)
  let names = List.map (fun w -> w.Workloads.Common.name) Workloads.Suite.all in
  let model =
    List.map
      (fun ((job : Fleet.Job.t), m) -> (job.scenario, m))
      (Util.fleet_sweep
         (Fleet.Sweep.matrix ~scenarios:names ~ks:[ compress_k ] ()))
  in
  List.map
    (fun w ->
      let m = List.assoc w.Workloads.Common.name model in
      let prog = Eris.Asm.assemble_exn w.Workloads.Common.source in
      match Runtime.run ~k:compress_k prog with
      | Ok (machine, stats) ->
        {
          workload = w.Workloads.Common.name;
          engine_demand = m.Core.Metrics.demand_decompressions;
          runtime_decompressions = stats.Runtime.decompressions;
          runtime_traps = stats.Runtime.traps;
          engine_discards = m.Core.Metrics.discards;
          runtime_deletions = stats.Runtime.deletions;
          checksum_ok =
            Eris.Machine.read_word machine w.Workloads.Common.result_addr
            = w.Workloads.Common.expected;
        }
      | Error _ ->
        {
          workload = w.Workloads.Common.name;
          engine_demand = m.Core.Metrics.demand_decompressions;
          runtime_decompressions = -1;
          runtime_traps = -1;
          engine_discards = m.Core.Metrics.discards;
          runtime_deletions = -1;
          checksum_ok = false;
        })
    Workloads.Suite.all

let run () =
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E16 (validation): timing model vs. executable runtime (k=%d, \
            on-demand)"
           compress_k)
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("model demand dec", Report.Table.Right);
          ("runtime dec", Report.Table.Right);
          ("runtime traps", Report.Table.Right);
          ("model discards", Report.Table.Right);
          ("runtime deletions", Report.Table.Right);
          ("checksum", Report.Table.Left);
        ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row t
        [
          r.workload;
          string_of_int r.engine_demand;
          string_of_int r.runtime_decompressions;
          string_of_int r.runtime_traps;
          string_of_int r.engine_discards;
          string_of_int r.runtime_deletions;
          (if r.checksum_ok then "matches reference" else "MISMATCH");
        ])
    (rows ());
  t
