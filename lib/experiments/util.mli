(** Shared helpers for the experiment drivers. *)

val scenarios : unit -> Core.Scenario.t list
(** The 8 workload scenarios (built once and memoized: building one
    executes the kernel to extract its trace). *)

val scenario : string -> Core.Scenario.t
(** By workload name. @raise Invalid_argument if unknown. *)

val collect_events : unit -> Core.Engine.event list ref * (Core.Engine.event -> unit)
(** An event sink for engine logs; the list accumulates newest-first
    ([List.rev] it for chronological order). Prefer
    {!Sim.Events.collector} in new code. *)

val event_to_string : Core.Engine.event -> string
(** {!Sim.Events.describe} ([Core.Engine.event] is the same type). *)

val event_time : Core.Engine.event -> int
(** {!Sim.Events.time}. *)

val run : Core.Scenario.t -> Core.Policy.t -> Core.Metrics.t
(** {!Core.Scenario.run} with the scenario codec's cost model. *)
