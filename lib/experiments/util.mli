(** Shared helpers for the experiment drivers. *)

val scenarios : unit -> Core.Scenario.t list
(** The 8 workload scenarios (built once and memoized: building one
    executes the kernel to extract its trace). *)

val scenario : string -> Core.Scenario.t
(** By workload name. @raise Invalid_argument if unknown. *)

val collect_events : unit -> Core.Engine.event list ref * (Core.Engine.event -> unit)
(** An event sink for engine logs; the list accumulates newest-first
    ([List.rev] it for chronological order). Prefer
    {!Sim.Events.collector} in new code. *)

val event_to_string : Core.Engine.event -> string
(** {!Sim.Events.describe} ([Core.Engine.event] is the same type). *)

val event_time : Core.Engine.event -> int
(** {!Sim.Events.time}. *)

val run : Core.Scenario.t -> Core.Policy.t -> Core.Metrics.t
(** {!Core.Scenario.run} with the scenario codec's cost model. *)

val configure_fleet :
  ?jobs:int ->
  ?cache:Fleet.Cache.t ->
  ?registry:Sim.Metrics.t ->
  ?progress:(string -> unit) ->
  unit ->
  unit
(** Sets how {!fleet_sweep} — and therefore every sweeping experiment
    (E6, E10, E16, E17) — executes its engine runs. Defaults restore
    the sequential uncached behaviour ([jobs = 1], no cache), which
    the fleet guarantees produces identical tables.
    @raise Invalid_argument if [jobs < 1]. *)

val resolve : scenario:string -> codec:string -> Core.Scenario.t
(** The fleet's scenario resolver: a plain workload name (memoized
    suite, or a named registry codec for non-["code"] jobs), a [gen:]
    generator spec or a [multi:] composition ({!Corpus.Resolve}). *)

val fleet_sweep : Fleet.Job.t list -> (Fleet.Job.t * Core.Metrics.t) list
(** {!Fleet.Sweep.run} under the current {!configure_fleet} settings,
    resolving scenario strings through {!resolve} — so generated
    [gen:]/[multi:] scenarios sweep and cache exactly like suite
    workloads. Results come back in submission order.
    @raise Failure if any job errored. *)
