let cache = ref None

let scenarios () =
  match !cache with
  | Some s -> s
  | None ->
    let s = Workloads.Suite.scenarios () in
    cache := Some s;
    s

let scenario name =
  match
    List.find_opt (fun sc -> sc.Core.Scenario.name = name) (scenarios ())
  with
  | Some sc -> sc
  | None -> invalid_arg (Printf.sprintf "Experiments.Util.scenario: %S" name)

let collect_events () =
  let events = ref [] in
  (events, fun ev -> events := ev :: !events)

let event_time = Sim.Events.time
let event_to_string = Sim.Events.describe

let run sc policy = Core.Scenario.run sc policy
