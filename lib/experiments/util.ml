let cache = ref None

let scenarios () =
  match !cache with
  | Some s -> s
  | None ->
    let s = Workloads.Suite.scenarios () in
    cache := Some s;
    s

let scenario name =
  match
    List.find_opt (fun sc -> sc.Core.Scenario.name = name) (scenarios ())
  with
  | Some sc -> sc
  | None -> invalid_arg (Printf.sprintf "Experiments.Util.scenario: %S" name)

let collect_events () =
  let events = ref [] in
  (events, fun ev -> events := ev :: !events)

let event_time = Sim.Events.time
let event_to_string = Sim.Events.describe

let run sc policy = Core.Scenario.run sc policy

(* ------------------------------------------------------------------ *)
(* Fleet plumbing: every sweeping experiment funnels its runs through
   here, so one configuration call (from ccomp/bench/tests) turns the
   whole table-regeneration pass parallel and/or cached. Default is
   sequential and uncached — byte-identical to the pre-fleet code. *)

type fleet_config = {
  mutable jobs : int;
  mutable cache : Fleet.Cache.t option;
  mutable registry : Sim.Metrics.t option;
  mutable progress : (string -> unit) option;
}

let fleet = { jobs = 1; cache = None; registry = None; progress = None }

let configure_fleet ?(jobs = 1) ?cache ?registry ?progress () =
  if jobs < 1 then invalid_arg "Experiments.Util.configure_fleet: jobs < 1";
  fleet.jobs <- jobs;
  fleet.cache <- cache;
  fleet.registry <- registry;
  fleet.progress <- progress

let resolve_plain ~scenario:name ~codec =
  match codec with
  | "code" -> scenario name
  | other ->
    Workloads.Common.scenario
      ~codec:(Compress.Registry.find_exn other)
      (Workloads.Suite.find_exn name)

(* The fleet's scenario resolver: plain workload names, [gen:]
   generator specs and [multi:] compositions all resolve here, so a
   generated program sweeps and caches exactly like a suite one. *)
let resolve ~scenario:name ~codec =
  if Corpus.Resolve.is_spec name then
    let lookup n = resolve_plain ~scenario:n ~codec
    and codec =
      match codec with
      | "code" -> None
      | other -> Some (Compress.Registry.find_exn other)
    in
    Corpus.Resolve.scenario ~lookup ?codec name
  else resolve_plain ~scenario:name ~codec

let fleet_sweep specs =
  Fleet.Sweep.run ~jobs:fleet.jobs ?cache:fleet.cache ?registry:fleet.registry
    ?progress:fleet.progress ~resolve specs
  |> List.map (fun (o : Fleet.Sweep.outcome) ->
         match o.result with
         | Ok m -> (o.job, m)
         | Error msg ->
           failwith
             (Printf.sprintf "fleet job failed (%s): %s"
                (Fleet.Job.describe o.job) msg))
