let workload_names = [ "matmul"; "dijkstra"; "fsm" ]
let fractions = [ 1.0; 0.8; 0.6; 0.4; 0.2; 0.1 ]
let compress_k = 8

let series sc =
  let unbounded = Util.run sc (Core.Policy.on_demand ~k:compress_k) in
  let peak = max 1 unbounded.Core.Metrics.peak_decompressed_bytes in
  List.map
    (fun frac ->
      let budget = max 1 (int_of_float (frac *. float_of_int peak)) in
      let policy = Core.Policy.make ~compress_k ~budget () in
      (frac, Util.run sc policy))
    fractions

let run () =
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E10: memory-budget variant with LRU eviction (k=%d, budget as \
            fraction of unbudgeted peak)"
           compress_k)
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("budget", Report.Table.Right);
          ("budget bytes", Report.Table.Right);
          ("overhead", Report.Table.Right);
          ("evictions", Report.Table.Right);
          ("overflows", Report.Table.Right);
          ("peak dec bytes", Report.Table.Right);
        ]
  in
  (* Two fleet stages: the unbounded runs fix each workload's peak,
     which prices the budgeted grid of the second stage. *)
  let unbounded_jobs =
    Fleet.Sweep.matrix ~scenarios:workload_names ~ks:[ compress_k ] ()
  in
  let peaks =
    List.map
      (fun ((job : Fleet.Job.t), m) ->
        (job.scenario, max 1 m.Core.Metrics.peak_decompressed_bytes))
      (Util.fleet_sweep unbounded_jobs)
  in
  let budgeted_jobs =
    List.concat_map
      (fun name ->
        let peak = List.assoc name peaks in
        List.map
          (fun frac ->
            let budget = max 1 (int_of_float (frac *. float_of_int peak)) in
            (frac, Fleet.Job.make ~budget ~scenario:name ~k:compress_k ()))
          fractions)
      workload_names
  in
  List.iter2
    (fun (frac, _) ((job : Fleet.Job.t), m) ->
      Report.Table.add_row t
        [
          job.scenario;
          Printf.sprintf "%.0f%%" (100.0 *. frac);
          string_of_int (Option.get job.budget);
          Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
          string_of_int m.Core.Metrics.evictions;
          string_of_int m.Core.Metrics.budget_overflows;
          string_of_int m.Core.Metrics.peak_decompressed_bytes;
        ])
    budgeted_jobs
    (Util.fleet_sweep (List.map snd budgeted_jobs));
  t
