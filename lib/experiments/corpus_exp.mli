(** E20: retention-policy ranking robustness over a generated corpus.
    Four {!Corpus.Gen} shape families × many seeds (default 200
    programs, [CCOMP_E20_COUNT] overrides) each run under the three
    profile-free retention policies at one k; the table counts wins
    (min total cycles) per family and the modal policy's share —
    whether the suite-derived ranking generalizes beyond the 8
    hand-picked workloads. *)

val compress_k : int
val policies : string list

val families : (string * string) list
(** (family name, base [gen:] spec) — seeds vary per program. *)

val count : unit -> int
(** Corpus size: [CCOMP_E20_COUNT] or 200.
    @raise Invalid_argument on a malformed override. *)

val specs : unit -> (string * string) list
(** The corpus: (family, canonical [gen:] spec) pairs. *)

type row = {
  family : string;
  programs : int;
  wins : (string * int) list;  (** policy -> programs it won *)
}

val rows : unit -> row list
val run : unit -> Report.Table.t
