(* E20: is the retention-policy ranking an artifact of the 8-workload
   suite, or does it survive contact with programs nobody hand-picked?
   Four shape families × many seeds produce a corpus of generated
   programs (Corpus.Gen); every program runs under each retention
   policy at one k, through the fleet so the corpus caches and
   parallelizes like any sweep. The table reports, per family, how
   often each policy wins (min total cycles) and how concentrated the
   wins are — a modal share near 1.0 means the suite ranking
   generalizes, near 1/3 means the policy choice is shape noise. *)

let compress_k = 8
let policies = [ "kedge"; "loop-aware"; "clock" ]

(* One base spec per family; seeds vary per program. The families pull
   the generator's knobs in different directions so the corpus is not
   200 rephrasings of one shape. *)
let families =
  [
    ("loopy", "gen:depth=4,fanout=2,blocks=geo:14,calls=0,skew=0.95,cold=8,rounds=6");
    ("branchy", "gen:depth=1,fanout=6,blocks=bim:4-40,calls=0,skew=0.7,cold=12,rounds=8");
    ("call-heavy", "gen:depth=2,fanout=2,blocks=geo:10,calls=4,skew=0.85,cold=6,rounds=6");
    ("flat", "gen:depth=1,fanout=1,blocks=uni:8-24,calls=1,skew=0.55,cold=24,rounds=10");
  ]

let default_count = 200

(* The check.sh smoke (and anyone iterating) shrinks the corpus via
   the environment rather than a code edit. *)
let count () =
  match Sys.getenv_opt "CCOMP_E20_COUNT" with
  | None -> default_count
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= List.length families -> n
    | _ ->
      invalid_arg
        (Printf.sprintf "CCOMP_E20_COUNT must be an int >= %d: %S"
           (List.length families) s))

let specs () =
  let total = count () in
  let per_family = total / List.length families in
  List.concat_map
    (fun (family, base) ->
      let spec = Corpus.Spec.of_string_exn base in
      List.init per_family (fun i ->
          (family, Corpus.Spec.to_string { spec with Corpus.Spec.seed = i + 1 })))
    families

type row = {
  family : string;
  programs : int;
  wins : (string * int) list;  (* policy -> programs it won *)
}

let rows () =
  let corpus = specs () in
  let jobs =
    List.concat_map
      (fun (_, scenario) ->
        List.map
          (fun policy ->
            Fleet.Job.make
              ~retention:(Retention_compare.job_retention_of_name policy)
              ~scenario ~k:compress_k ())
          policies)
      corpus
  in
  let results = Util.fleet_sweep jobs in
  let cycles = Hashtbl.create 512 in
  List.iter
    (fun ((job : Fleet.Job.t), m) ->
      let policy =
        match job.retention with
        | Fleet.Job.Kedge -> "kedge"
        | Fleet.Job.Loop_aware _ -> "loop-aware"
        | Fleet.Job.Clock -> "clock"
        | Fleet.Job.Pin_hot _ -> "pin-hot"
      in
      Hashtbl.replace cycles (job.scenario, policy) m.Core.Metrics.total_cycles)
    results;
  let winner scenario =
    List.fold_left
      (fun best policy ->
        let c = Hashtbl.find cycles (scenario, policy) in
        match best with
        | Some (_, bc) when bc <= c -> best
        | _ -> Some (policy, c))
      None policies
    |> Option.get |> fst
  in
  List.map
    (fun (family, _) ->
      let members =
        List.filter_map
          (fun (f, scenario) -> if f = family then Some scenario else None)
          corpus
      in
      let wins =
        List.map
          (fun policy ->
            ( policy,
              List.length
                (List.filter (fun sc -> winner sc = policy) members) ))
          policies
      in
      { family; programs = List.length members; wins })
    families

let modal row =
  List.fold_left
    (fun ((_, bn) as best) ((_, n) as cand) -> if n > bn then cand else best)
    ("-", -1) row.wins

let run () =
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E20 corpus robustness: retention wins over %d generated programs \
            (k=%d)"
           (List.length (specs ()))
           compress_k)
      ~columns:
        ([ ("family", Report.Table.Left); ("programs", Report.Table.Right) ]
        @ List.map
            (fun p -> (p ^ " wins", Report.Table.Right))
            policies
        @ [
            ("modal policy", Report.Table.Left);
            ("modal share", Report.Table.Right);
          ])
  in
  let rows = rows () in
  List.iter
    (fun row ->
      let name, n = modal row in
      Report.Table.add_row t
        ([ row.family; Report.Table.fmt_int row.programs ]
        @ List.map
            (fun p -> Report.Table.fmt_int (List.assoc p row.wins))
            policies
        @ [
            name;
            Report.Table.fmt_pct
              (float_of_int n /. float_of_int (max 1 row.programs));
          ]))
    rows;
  (* the aggregate row answers the headline question in one line *)
  let total = List.fold_left (fun a r -> a + r.programs) 0 rows in
  let total_wins p =
    List.fold_left (fun a r -> a + List.assoc p r.wins) 0 rows
  in
  let all = { family = "all"; programs = total; wins = List.map (fun p -> (p, total_wins p)) policies } in
  let name, n = modal all in
  Report.Table.add_row t
    ([ "all"; Report.Table.fmt_int total ]
    @ List.map (fun p -> Report.Table.fmt_int (total_wins p)) policies
    @ [ name; Report.Table.fmt_pct (float_of_int n /. float_of_int (max 1 total)) ]);
  t
