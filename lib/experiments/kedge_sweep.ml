let ks = [ 1; 2; 4; 8; 16; 32 ]

let series sc =
  List.map (fun k -> (k, Util.run sc (Core.Policy.on_demand ~k))) ks

let run () =
  let t =
    Report.Table.create
      ~title:
        "E6: k-edge compression sweep (on-demand decompression) - memory \
         vs. performance tradeoff"
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("k", Report.Table.Right);
          ("overhead", Report.Table.Right);
          ("peak mem saving", Report.Table.Right);
          ("avg mem saving", Report.Table.Right);
          ("demand decs", Report.Table.Right);
          ("discards", Report.Table.Right);
        ]
  in
  (* The whole workload x k grid goes through the fleet in one
     submission: parallel and cached when the caller configured it,
     sequential (and row-for-row identical) by default. *)
  let names =
    List.map (fun sc -> sc.Core.Scenario.name) (Util.scenarios ())
  in
  let jobs = Fleet.Sweep.matrix ~scenarios:names ~ks () in
  List.iter
    (fun ((job : Fleet.Job.t), m) ->
      Report.Table.add_row t
        [
          job.scenario;
          string_of_int job.k;
          Report.Table.fmt_pct (Core.Metrics.overhead_ratio m);
          Report.Table.fmt_pct (Core.Metrics.peak_memory_saving m);
          Report.Table.fmt_pct (Core.Metrics.avg_memory_saving m);
          string_of_int m.Core.Metrics.demand_decompressions;
          string_of_int m.Core.Metrics.discards;
        ])
    (Util.fleet_sweep jobs);
  t
