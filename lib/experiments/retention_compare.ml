(* E17: the pluggable retention policies head to head. Every workload
   of the suite runs through the timing model once per policy at the
   same k; the table aggregates the costs the retention decision
   drives — stall cycles, peak decompressed bytes, patch-backs — so
   the trade-off each policy makes is visible in one row. *)

let compress_k = 8
let pin_fraction = 0.5

type agg = {
  mutable total_cycles : int;
  mutable stall_cycles : int;
  mutable exceptions : int;
  mutable patches : int;
  mutable discards : int;
  mutable peak_bytes : int;  (* max over the suite *)
  mutable overhead_sum : float;
  mutable runs : int;
}

let zero () =
  {
    total_cycles = 0;
    stall_cycles = 0;
    exceptions = 0;
    patches = 0;
    discards = 0;
    peak_bytes = 0;
    overhead_sum = 0.0;
    runs = 0;
  }

let retention_of_name = function
  | "kedge" -> Residency.Policy.Kedge
  | "loop-aware" -> Residency.Policy.Loop_aware { weight = 1 }
  | "clock" -> Residency.Policy.Clock
  | name -> invalid_arg ("Retention_compare: unknown policy " ^ name)

let retention_for sc = function
  | "pin-hot" ->
    let profile = Core.Scenario.profile sc in
    Residency.Policy.Pin_hot
      { pinned = Cfg.Profile.hot_blocks profile ~fraction:pin_fraction }
  | name -> retention_of_name name

let policies = [ "kedge"; "loop-aware"; "clock"; "pin-hot" ]

let rows () =
  List.map
    (fun name ->
      let a = zero () in
      List.iter
        (fun sc ->
          let retention = retention_for sc name in
          let m =
            Util.run sc (Core.Policy.make ~compress_k ~retention ())
          in
          a.total_cycles <- a.total_cycles + m.Core.Metrics.total_cycles;
          a.stall_cycles <- a.stall_cycles + m.Core.Metrics.stall_cycles;
          a.exceptions <- a.exceptions + m.Core.Metrics.exceptions;
          a.patches <- a.patches + m.Core.Metrics.patches;
          a.discards <- a.discards + m.Core.Metrics.discards;
          a.peak_bytes <-
            max a.peak_bytes m.Core.Metrics.peak_decompressed_bytes;
          a.overhead_sum <- a.overhead_sum +. Core.Metrics.overhead_ratio m;
          a.runs <- a.runs + 1)
        (Util.scenarios ());
      (name, a))
    policies

let run () =
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E17 retention policies head to head (workload suite, k=%d)"
           compress_k)
      ~columns:
        [
          ("retention", Report.Table.Left);
          ("total cycles", Report.Table.Right);
          ("stall cycles", Report.Table.Right);
          ("exceptions", Report.Table.Right);
          ("patch-backs", Report.Table.Right);
          ("discards", Report.Table.Right);
          ("peak bytes", Report.Table.Right);
          ("avg overhead", Report.Table.Right);
        ]
  in
  List.iter
    (fun (name, a) ->
      Report.Table.add_row t
        [
          name;
          Report.Table.fmt_int a.total_cycles;
          Report.Table.fmt_int a.stall_cycles;
          Report.Table.fmt_int a.exceptions;
          Report.Table.fmt_int a.patches;
          Report.Table.fmt_int a.discards;
          Report.Table.fmt_bytes a.peak_bytes;
          Report.Table.fmt_pct (a.overhead_sum /. float_of_int a.runs);
        ])
    (rows ());
  t
