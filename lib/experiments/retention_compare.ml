(* E17: the pluggable retention policies head to head. Every workload
   of the suite runs through the timing model once per policy at the
   same k; the table aggregates the costs the retention decision
   drives — stall cycles, peak decompressed bytes, patch-backs — so
   the trade-off each policy makes is visible in one row. *)

let compress_k = 8
let pin_fraction = 0.5

type agg = {
  mutable total_cycles : int;
  mutable stall_cycles : int;
  mutable exceptions : int;
  mutable patches : int;
  mutable discards : int;
  mutable peak_bytes : int;  (* max over the suite *)
  mutable overhead_sum : float;
  mutable runs : int;
}

let zero () =
  {
    total_cycles = 0;
    stall_cycles = 0;
    exceptions = 0;
    patches = 0;
    discards = 0;
    peak_bytes = 0;
    overhead_sum = 0.0;
    runs = 0;
  }

let retention_of_name = function
  | "kedge" -> Residency.Policy.Kedge
  | "loop-aware" -> Residency.Policy.Loop_aware { weight = 1 }
  | "clock" -> Residency.Policy.Clock
  | name -> invalid_arg ("Retention_compare: unknown policy " ^ name)

let retention_for sc = function
  | "pin-hot" ->
    let profile = Core.Scenario.profile sc in
    Residency.Policy.Pin_hot
      { pinned = Cfg.Profile.hot_blocks profile ~fraction:pin_fraction }
  | name -> retention_of_name name

let policies = [ "kedge"; "loop-aware"; "clock"; "pin-hot" ]

(* The serializable twin of [retention_for]: pin-hot's pinned set is
   recomputed inside the fleet job from the scenario's own profile at
   the same fraction, so the job spec stays closure-free. *)
let job_retention_of_name = function
  | "kedge" -> Fleet.Job.Kedge
  | "loop-aware" -> Fleet.Job.Loop_aware { weight = 1 }
  | "clock" -> Fleet.Job.Clock
  | "pin-hot" -> Fleet.Job.Pin_hot { fraction = pin_fraction }
  | name -> invalid_arg ("Retention_compare: unknown policy " ^ name)

let rows () =
  let names =
    List.map (fun sc -> sc.Core.Scenario.name) (Util.scenarios ())
  in
  let jobs =
    List.concat_map
      (fun policy ->
        List.map
          (fun scenario ->
            Fleet.Job.make
              ~retention:(job_retention_of_name policy)
              ~scenario ~k:compress_k ())
          names)
      policies
  in
  let by_policy = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace by_policy p (zero ())) policies;
  List.iter
    (fun ((job : Fleet.Job.t), m) ->
      let a =
        Hashtbl.find by_policy
          (match job.retention with
          | Fleet.Job.Kedge -> "kedge"
          | Fleet.Job.Loop_aware _ -> "loop-aware"
          | Fleet.Job.Clock -> "clock"
          | Fleet.Job.Pin_hot _ -> "pin-hot")
      in
      a.total_cycles <- a.total_cycles + m.Core.Metrics.total_cycles;
      a.stall_cycles <- a.stall_cycles + m.Core.Metrics.stall_cycles;
      a.exceptions <- a.exceptions + m.Core.Metrics.exceptions;
      a.patches <- a.patches + m.Core.Metrics.patches;
      a.discards <- a.discards + m.Core.Metrics.discards;
      a.peak_bytes <- max a.peak_bytes m.Core.Metrics.peak_decompressed_bytes;
      a.overhead_sum <- a.overhead_sum +. Core.Metrics.overhead_ratio m;
      a.runs <- a.runs + 1)
    (Util.fleet_sweep jobs);
  List.map (fun name -> (name, Hashtbl.find by_policy name)) policies

let run () =
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E17 retention policies head to head (workload suite, k=%d)"
           compress_k)
      ~columns:
        [
          ("retention", Report.Table.Left);
          ("total cycles", Report.Table.Right);
          ("stall cycles", Report.Table.Right);
          ("exceptions", Report.Table.Right);
          ("patch-backs", Report.Table.Right);
          ("discards", Report.Table.Right);
          ("peak bytes", Report.Table.Right);
          ("avg overhead", Report.Table.Right);
        ]
  in
  List.iter
    (fun (name, a) ->
      Report.Table.add_row t
        [
          name;
          Report.Table.fmt_int a.total_cycles;
          Report.Table.fmt_int a.stall_cycles;
          Report.Table.fmt_int a.exceptions;
          Report.Table.fmt_int a.patches;
          Report.Table.fmt_int a.discards;
          Report.Table.fmt_bytes a.peak_bytes;
          Report.Table.fmt_pct (a.overhead_sum /. float_of_int a.runs);
        ])
    (rows ());
  t
