(** E19 — compressed-I-cache residency: every workload at block
    granularity (the paper's unit) and at 16/32/64-byte line
    granularity with the matched BDI/CPack cache-line codecs.
    Compares the resident compressed-image ratio, run cycles,
    overhead, demand decompressions, and energy under the
    [sram-heavy] device profile. *)

val run : unit -> Report.Table.t
