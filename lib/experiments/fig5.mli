(** E5 — Figure 5: the §5 memory organization traced step by step for
    the access pattern B0, B1, B0, B1, B3 with k = 2. Drives
    {!Memsim.Layout} and {!Memsim.Kedge} directly (independent of the
    engine) and reproduces the nine numbered snapshots: initial
    all-compressed image, decompressions into the separate area,
    branch patching via remember sets, the exception-free direct
    branch of step (7), and the deletion of B0' in step (9). *)

val run : unit -> Report.Table.t

val holds : unit -> bool
(** After the final step, exactly B1' and B3' are resident, B0' was
    deleted with one branch site patched back, and the compressed
    area never changed size. *)
