type entry = {
  id : string;
  slug : string;
  paper_anchor : string;
  runner : unit -> Report.Table.t;
}

let all =
  [
    { id = "E1"; slug = "fig1"; paper_anchor = "Figure 1"; runner = Fig1.run };
    { id = "E2"; slug = "fig2"; paper_anchor = "Figure 2"; runner = Fig2.run };
    { id = "E3"; slug = "fig3"; paper_anchor = "Figure 3 / section 4"; runner = Fig3.run };
    { id = "E4"; slug = "fig4"; paper_anchor = "Figure 4"; runner = Fig4.run };
    { id = "E5"; slug = "fig5"; paper_anchor = "Figure 5 / section 5"; runner = Fig5.run };
    {
      id = "E6";
      slug = "kedge-sweep";
      paper_anchor = "section 3 tradeoff";
      runner = Kedge_sweep.run;
    };
    {
      id = "E7";
      slug = "strategy-compare";
      paper_anchor = "section 4 / Figure 3";
      runner = Strategy_compare.run;
    };
    {
      id = "E8";
      slug = "predecomp-sweep";
      paper_anchor = "section 4 timing dimension";
      runner = Predecomp_sweep.run;
    };
    {
      id = "E9";
      slug = "discard-ablation";
      paper_anchor = "section 5 implementation";
      runner = Discard_ablation.run;
    };
    {
      id = "E10";
      slug = "budget";
      paper_anchor = "section 2 budget variant";
      runner = Budget_exp.run;
    };
    {
      id = "E11";
      slug = "granularity";
      paper_anchor = "section 6 related-work comparison";
      runner = Granularity_exp.run;
    };
    {
      id = "E12";
      slug = "codecs";
      paper_anchor = "codec choice (implicit)";
      runner = Codecs_exp.run;
    };
    {
      id = "E13";
      slug = "predictor-ablation";
      paper_anchor = "section 4 prediction";
      runner = Predictor_ablation.run;
    };
    {
      id = "E14";
      slug = "adaptive-k";
      paper_anchor = "extension of the section 3 tradeoff";
      runner = Adaptive_exp.run;
    };
    {
      id = "E15";
      slug = "coresidence";
      paper_anchor = "extension of the section 1 motivation";
      runner = Coresidence.run;
    };
    {
      id = "E16";
      slug = "validation";
      paper_anchor = "model vs. executable runtime";
      runner = Validation.run;
    };
    {
      id = "E17";
      slug = "retention-compare";
      paper_anchor = "extension: residency policies beyond section 3";
      runner = Retention_compare.run;
    };
    {
      id = "E18";
      slug = "energy-pareto";
      paper_anchor = "extension: energy dimension of the section 3 tradeoff";
      runner = Energy_pareto.run;
    };
    {
      id = "E19";
      slug = "line-granularity";
      paper_anchor = "extension: hardware compressed-I-cache residency";
      runner = Line_granularity.run;
    };
    {
      id = "E20";
      slug = "corpus-robustness";
      paper_anchor = "extension: generated-program corpus";
      runner = Corpus_exp.run;
    };
    {
      id = "E21";
      slug = "multitask-contention";
      paper_anchor = "extension: preemptive multitasking";
      runner = Multitask_exp.run;
    };
  ]

let find key =
  let k = String.lowercase_ascii key in
  List.find_opt
    (fun e -> String.lowercase_ascii e.id = k || e.slug = k)
    all

let run_all () = List.map (fun e -> (e, e.runner ())) all
