(* E21: what preemptive multitasking does to the paper's model. Pairs
   of suite workloads run interleaved (Corpus.Multitask) under a
   shared decompressed-area budget, across preemption quanta and two
   retention policies. The cross-eviction column counts copies of one
   task's working set discarded or evicted while the other task was
   running — contention the single-threaded suite can never show. A
   small quantum thrashes the shared area; a large one approaches the
   two tasks run back to back. *)

let compress_k = 8
let quanta = [ 16; 64; 256 ]
let retentions = [ "kedge"; "clock" ]
let combos = [ [ "fir"; "crc32" ]; [ "matmul"; "dct" ]; [ "qsort"; "strsearch" ] ]

(* A budget the union working sets cannot both fit under: a third of
   the composed image's uncompressed bytes forces the tasks to fight
   for the area at small quanta. *)
let budget_of sc =
  let total =
    Array.fold_left
      (fun a (i : Core.Engine.block_info) -> a + i.uncompressed_bytes)
      0 sc.Core.Scenario.info
  in
  max 256 (total / 3)

type row = {
  tasks : string list;
  quantum : int;
  retention : string;
  metrics : Core.Metrics.t;
  stats : Corpus.Multitask.task_stats array;
}

let rows () =
  List.concat_map
    (fun tasks ->
      let scenarios = List.map Util.scenario tasks in
      List.concat_map
        (fun quantum ->
          let mt = Corpus.Multitask.compose ~quantum ~seed:1 scenarios in
          let budget = budget_of mt.Corpus.Multitask.scenario in
          List.map
            (fun retention ->
              let metrics, stats =
                Corpus.Multitask.run mt
                  (Core.Policy.make ~compress_k ~budget
                     ~retention:(Retention_compare.retention_of_name retention)
                     ())
              in
              { tasks; quantum; retention; metrics; stats })
            retentions)
        quanta)
    combos

let per_task f stats =
  String.concat "+"
    (Array.to_list (Array.map (fun s -> string_of_int (f s)) stats))

let run () =
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E21 multitask contention: shared area under preemption (k=%d, \
            budget=uncompressed/3)"
           compress_k)
      ~columns:
        [
          ("tasks", Report.Table.Left);
          ("quantum", Report.Table.Right);
          ("retention", Report.Table.Left);
          ("total cycles", Report.Table.Right);
          ("demand decs", Report.Table.Right);
          ("per-task decs", Report.Table.Right);
          ("cross evictions", Report.Table.Right);
          ("peak bytes", Report.Table.Right);
        ]
  in
  List.iter
    (fun row ->
      let cross =
        Array.fold_left
          (fun a (s : Corpus.Multitask.task_stats) ->
            a + s.evicted_while_inactive)
          0 row.stats
      in
      Report.Table.add_row t
        [
          String.concat "+" row.tasks;
          Report.Table.fmt_int row.quantum;
          row.retention;
          Report.Table.fmt_int row.metrics.Core.Metrics.total_cycles;
          Report.Table.fmt_int row.metrics.Core.Metrics.demand_decompressions;
          per_task
            (fun (s : Corpus.Multitask.task_stats) -> s.demand_decompressions)
            row.stats;
          Report.Table.fmt_int cross;
          Report.Table.fmt_bytes
            row.metrics.Core.Metrics.peak_decompressed_bytes;
        ])
    (rows ());
  t
