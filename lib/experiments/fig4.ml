let trace = [| 0; 1; 3; 6; 7; 9 |]

let events () =
  let g = Paper_figures.fig2 () in
  let sc = Paper_figures.scenario ~name:"fig4" g ~trace in
  let events, log = Util.collect_events () in
  let policy =
    Core.Policy.make ~mode:Core.Policy.Recompress
      ~strategy:(Core.Policy.Pre_all { lookahead = 2 })
      ~compress_k:2 ()
  in
  let _ = Core.Scenario.run ~log sc policy in
  List.rev !events

let thread_of (ev : Core.Engine.event) =
  match ev with
  | Exec _ | Exception _ | Stall _ | Patch _ | Unpatch _ | Demand_decompress _
    ->
    "execution"
  | Prefetch_issue _ -> "decompression"
  | Discard _ | Evict _ | Recompress_queued _ | Flush _ -> "compression"

let holds () =
  let evs = events () in
  let exec_times = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match (ev : Core.Engine.event) with
      | Exec { block; at } ->
        let prev = Hashtbl.find_opt exec_times block in
        Hashtbl.replace exec_times block
          (match prev with Some (first, _) -> (first, at) | None -> (at, at))
      | Exception _ | Demand_decompress _ | Prefetch_issue _ | Stall _
      | Patch _ | Unpatch _ | Discard _ | Evict _ | Recompress_queued _
      | Flush _ -> ())
    evs;
  List.for_all
    (fun ev ->
      match (ev : Core.Engine.event) with
      | Prefetch_issue { block; at; _ } -> (
        match Hashtbl.find_opt exec_times block with
        | Some (first_exec, _) -> at <= first_exec
        | None -> true (* prefetched but never reached: ahead by definition *))
      | Recompress_queued { block; at; _ } -> (
        match Hashtbl.find_opt exec_times block with
        | Some (_, last_exec) -> at >= last_exec
        | None -> true (* wasted prefetch retired without executing *))
      | Exec _ | Exception _ | Demand_decompress _ | Stall _ | Patch _
      | Unpatch _ | Discard _ | Evict _ | Flush _ -> true)
    evs

let run () =
  let t =
    Report.Table.create
      ~title:
        "E4 / Figure 4: three-thread cooperation (pre-all k=2, recompress \
         k=2 on the highlighted path B0-B1-B3-B6-B7-B9)"
      ~columns:
        [
          ("cycle", Report.Table.Right);
          ("thread", Report.Table.Left);
          ("action", Report.Table.Left);
        ]
  in
  List.iter
    (fun ev ->
      Report.Table.add_row t
        [
          string_of_int (Util.event_time ev);
          thread_of ev;
          Util.event_to_string ev;
        ])
    (events ());
  Report.Table.add_row t
    [
      "";
      "";
      Printf.sprintf
        "verdict: decompression runs ahead, compression trails behind = %b"
        (holds ());
    ];
  t
