let profile = "sram-heavy"
let default_ks = [ 1; 2; 4; 8; 16; 32 ]

type optimum = { workload : string; cycles_opt_k : int; energy_opt_k : int }

(* Strict < keeps the earliest minimum, and the k axis is ascending,
   so ties resolve to the smallest k — the cheaper image. *)
let argmin_k value rows =
  match rows with
  | [] -> invalid_arg "Energy_pareto: no rows for workload"
  | first :: rest ->
    let best =
      List.fold_left
        (fun best row -> if value row < value best then row else best)
        first rest
    in
    let job, _ = best in
    job.Fleet.Job.k

let sweep ks =
  let names =
    List.map (fun sc -> sc.Core.Scenario.name) (Util.scenarios ())
  in
  let jobs =
    Fleet.Sweep.matrix ~profiles:[ profile ] ~scenarios:names ~ks ()
  in
  let results = Util.fleet_sweep jobs in
  List.map
    (fun name ->
      ( name,
        List.filter
          (fun ((j : Fleet.Job.t), _) -> j.scenario = name)
          results ))
    names

let optima_of per_workload =
  List.map
    (fun (workload, rows) ->
      {
        workload;
        cycles_opt_k =
          argmin_k (fun (_, m) -> m.Core.Metrics.total_cycles) rows;
        energy_opt_k = argmin_k (fun (_, m) -> m.Core.Metrics.energy_nj) rows;
      })
    per_workload

let optima ?(ks = default_ks) () = optima_of (sweep ks)
let divergent = List.filter (fun o -> o.cycles_opt_k <> o.energy_opt_k)

let run_with ~ks () =
  let per_workload = sweep ks in
  let t =
    Report.Table.create
      ~title:
        (Printf.sprintf
           "E18: energy/cycles Pareto sweep under the %s device profile - \
            where the energy-optimal k leaves the cycles-optimal k"
           profile)
      ~columns:
        [
          ("workload", Report.Table.Left);
          ("k", Report.Table.Right);
          ("cycles", Report.Table.Right);
          ("energy (nJ)", Report.Table.Right);
          ("peak bytes", Report.Table.Right);
          ("pareto", Report.Table.Left);
          ("optimal", Report.Table.Left);
          ("diverges", Report.Table.Left);
        ]
  in
  List.iter
    (fun (workload, rows) ->
      let o = List.hd (optima_of [ (workload, rows) ]) in
      (* Front over the three reported objectives, all minimized. *)
      let points =
        List.map
          (fun ((job : Fleet.Job.t), (m : Core.Metrics.t)) ->
            {
              Report.Pareto.label = string_of_int job.k;
              values =
                [
                  ("cycles", float_of_int m.total_cycles);
                  ("energy-nj", float_of_int m.energy_nj);
                  ("peak-bytes", float_of_int m.peak_footprint_bytes);
                ];
            })
          rows
      in
      let front = Report.Pareto.front points in
      List.iter2
        (fun ((job : Fleet.Job.t), (m : Core.Metrics.t)) point ->
          let k = job.k in
          let optimal =
            match (k = o.cycles_opt_k, k = o.energy_opt_k) with
            | true, true -> "cycles+energy"
            | true, false -> "cycles"
            | false, true -> "energy"
            | false, false -> ""
          in
          Report.Table.add_row t
            [
              workload;
              string_of_int k;
              string_of_int m.total_cycles;
              string_of_int m.energy_nj;
              string_of_int m.peak_footprint_bytes;
              (if List.memq point front then "*" else "");
              optimal;
              (if o.cycles_opt_k <> o.energy_opt_k && k = o.energy_opt_k
               then "yes"
               else "");
            ])
        rows points)
    per_workload;
  t

let run () = run_with ~ks:default_ks ()
