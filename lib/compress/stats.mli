(** Corpus-level compression statistics, used by the codec-comparison
    experiment (E12). *)

type t = {
  codec_name : string;
  blocks : int;
  original_bytes : int;
  compressed_bytes : int;
  ratio : float;  (** compressed / original *)
  worst_block_ratio : float;
  best_block_ratio : float;
}

val measure : Codec.t -> bytes list -> t
(** Compresses every block independently and aggregates. *)

val pp : Format.formatter -> t -> unit

type throughput = {
  tp_codec_name : string;
  comp_mbps : float;  (** compression, MiB of input consumed per second *)
  dec_mbps : float;  (** decompression, MiB of output produced per second *)
  tp_ratio : float;  (** compressed / original over the block set *)
}

val throughput : ?min_time_s:float -> Codec.t -> bytes list -> throughput
(** [throughput codec blocks] measures wall-clock compress and
    decompress throughput by repeating whole passes over [blocks]
    (empty blocks are skipped) until at least [min_time_s] seconds
    (default 0.05) have elapsed per direction. Both rates are in MiB/s
    of {e uncompressed} bytes — the unit that matters for a
    decompress-on-fetch execution path. Used by the bench codec phase
    and [ccomp compress]. Always runs at least one pass and clamps the
    elapsed time away from zero, so the rates are finite even with
    [min_time_s = 0.] on a clock too coarse to see the run. *)
