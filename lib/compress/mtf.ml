(* The alphabet is kept in a 256-entry array; moving a symbol to the
   front is an explicit shift, O(rank) per byte. The forward
   transform also maintains the inverse permutation (symbol -> rank),
   so finding a byte's rank is one array read instead of a scan. *)

let init_alphabet () = Array.init 256 (fun i -> i)

let move_to_front alphabet rank =
  let sym = alphabet.(rank) in
  Array.blit alphabet 0 alphabet 1 rank;
  alphabet.(0) <- sym;
  sym

let transform b =
  let alphabet = init_alphabet () in
  let rank_of = init_alphabet () in
  let out = Bytes.create (Bytes.length b) in
  Bytes.iteri
    (fun i c ->
      let sym = Char.code c in
      let rank = Array.unsafe_get rank_of sym in
      (* Shift alphabet.(0..rank-1) up one slot, bumping each shifted
         symbol's rank, then install [sym] at the front. *)
      for r = rank downto 1 do
        let s = Array.unsafe_get alphabet (r - 1) in
        Array.unsafe_set alphabet r s;
        Array.unsafe_set rank_of s r
      done;
      Array.unsafe_set alphabet 0 sym;
      Array.unsafe_set rank_of sym 0;
      Bytes.unsafe_set out i (Char.unsafe_chr rank))
    b;
  out

let untransform b =
  let alphabet = init_alphabet () in
  let out = Bytes.create (Bytes.length b) in
  Bytes.iteri
    (fun i c ->
      let rank = Char.code c in
      let sym = move_to_front alphabet rank in
      Bytes.set out i (Char.chr sym))
    b;
  out

let codec =
  let compress b = Rle.codec.Codec.compress (transform b) in
  let decompress b = untransform (Rle.codec.Codec.decompress b) in
  Codec.make ~name:"mtf-rle" ~dec_cycles_per_byte:4 ~comp_cycles_per_byte:6
    ~compress ~decompress ()
