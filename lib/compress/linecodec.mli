(** Registry adapters for the {!Lines} cache-line kernels.

    A program image is chunked into fixed-size lines (the last line
    may be short) and each line is compressed independently with BDI
    or CPack. The wire format mirrors a hardware compressed cache's
    tag/data split:

    {v
    [0..3]  original length, 32-bit little-endian
    tags    one per line, bit-packed MSB-first, padded to a byte:
              bdi)   4-bit encoding + 7-bit segment pointer
                     (payload bytes / 8, rounded up)
              cpack) 7-bit payload byte count
    data    per-line payloads, each starting on a byte boundary
            (cpack code streams are zero-padded to a whole byte)
    v}

    Decoders validate the tag section against the encodings' exact
    payload sizes and the total against the input length before
    allocating the output; any mismatch raises {!Codec.Corrupt}.

    The per-line wire cost (tag bits + payload bits, the number the
    line-granular residency scenario charges per line) is exposed via
    {!cost_bits}. *)

type family =
  | Bdi
  | Cpack

val line_sizes : int list
(** [16; 32; 64]. *)

val name : family -> int -> string
(** ["bdi-32"], ["cpack-64"], ... *)

val of_name : string -> (family * int) option
(** Inverse of {!name} for registered sizes; [None] otherwise. *)

val codec : family -> int -> Codec.t
(** The raw codec (not {!Codec.never_expanding}-wrapped; the registry
    wraps). Decompression rates: BDI 1 cycle/byte, CPack 2 (simple
    hardware-style decoders); compression 2 and 4. *)

val all : unit -> Codec.t list
(** Both families at every line size, raw. *)

val cost_bits : family -> bytes -> pos:int -> len:int -> int
(** Exact wire bits for one line, tag included — without the shared
    4-byte stream header, which a per-line residency store does not
    hold. *)
