(* Word-at-a-time bit I/O. Both sides keep pending bits in an OCaml
   int used as a 62-bit accumulator, so a read or write of w bits is a
   couple of shifts and masks instead of w div/mod round trips. The
   byte-level wire format (MSB-first within each byte) is unchanged. *)

module Writer = struct
  (* [acc] holds the low [nbits] bits still unflushed; the earliest
     written bit is the most significant of those. Invariant outside
     of [add_bits]: 0 <= nbits <= 7, acc < 2^nbits. *)
  type t = { mutable buf : Buffer.t; mutable acc : int; mutable nbits : int }

  let create () = { buf = Buffer.create 64; acc = 0; nbits = 0 }

  let flush_bytes t =
    while t.nbits >= 8 do
      t.nbits <- t.nbits - 8;
      Buffer.add_char t.buf (Char.unsafe_chr ((t.acc lsr t.nbits) land 0xFF))
    done;
    t.acc <- t.acc land ((1 lsl t.nbits) - 1)

  let add_bits t ~value ~bits =
    if bits < 0 || bits > 30 then invalid_arg "Bitio.Writer.add_bits";
    t.acc <- (t.acc lsl bits) lor (value land ((1 lsl bits) - 1));
    t.nbits <- t.nbits + bits;
    if t.nbits >= 8 then flush_bytes t

  let add_bit t b = add_bits t ~value:(if b then 1 else 0) ~bits:1

  let bit_length t = (Buffer.length t.buf * 8) + t.nbits

  let contents t =
    let tail =
      if t.nbits = 0 then ""
      else String.make 1 (Char.chr ((t.acc lsl (8 - t.nbits)) land 0xFF))
    in
    Bytes.of_string (Buffer.contents t.buf ^ tail)
end

module Reader = struct
  (* [acc] buffers the next [nbits] unread bits (the next bit in the
     stream is the most significant of the low [nbits]); [byte_pos]
     indexes the first byte not yet pulled into the accumulator.
     Invariant: acc < 2^nbits, nbits <= 62. *)
  type t = {
    data : bytes;
    mutable byte_pos : int;
    mutable acc : int;
    mutable nbits : int;
  }

  let create ?(pos = 0) data =
    if pos < 0 || pos > Bytes.length data then
      invalid_arg "Bitio.Reader.create";
    { data; byte_pos = pos; acc = 0; nbits = 0 }

  let bits_left t = ((Bytes.length t.data - t.byte_pos) * 8) + t.nbits

  let refill t =
    let n = Bytes.length t.data in
    while t.nbits <= 54 && t.byte_pos < n do
      t.acc <-
        (t.acc lsl 8) lor Char.code (Bytes.unsafe_get t.data t.byte_pos);
      t.byte_pos <- t.byte_pos + 1;
      t.nbits <- t.nbits + 8
    done

  (* Past the end of input [peek] pads with zero bits; only [consume]
     checks against the real stream length, exactly like table-driven
     zlib decoders expect. *)
  let peek t bits =
    if t.nbits < bits then refill t;
    if t.nbits >= bits then t.acc lsr (t.nbits - bits)
    else t.acc lsl (bits - t.nbits)

  let consume t bits =
    if bits > t.nbits then begin
      refill t;
      if bits > t.nbits then raise (Codec.Corrupt "Bitio: out of bits")
    end;
    t.nbits <- t.nbits - bits;
    t.acc <- t.acc land ((1 lsl t.nbits) - 1)

  let read_bits t bits =
    if bits < 0 || bits > 30 then invalid_arg "Bitio.Reader.read_bits";
    let v = peek t bits in
    consume t bits;
    v

  let read_bit t =
    if bits_left t <= 0 then raise (Codec.Corrupt "Bitio: out of bits");
    let v = peek t 1 in
    consume t 1;
    v = 1
end
