(* Word-at-a-time bit I/O. Both sides keep pending bits in an OCaml
   int used as a 62-bit accumulator, so a read or write of w bits is a
   couple of shifts and masks instead of w div/mod round trips. The
   byte-level wire format (MSB-first within each byte) is unchanged. *)

module Writer = struct
  (* [acc] holds the low [nbits] bits still unflushed; the earliest
     written bit is the most significant of those. Invariant outside
     of [add_bits]: 0 <= nbits <= 7, acc < 2^nbits. *)
  type t = { mutable buf : Buffer.t; mutable acc : int; mutable nbits : int }

  let create () = { buf = Buffer.create 64; acc = 0; nbits = 0 }

  let flush_bytes t =
    while t.nbits >= 8 do
      t.nbits <- t.nbits - 8;
      Buffer.add_char t.buf (Char.unsafe_chr ((t.acc lsr t.nbits) land 0xFF))
    done;
    t.acc <- t.acc land ((1 lsl t.nbits) - 1)

  let add_bits t ~value ~bits =
    if bits < 0 || bits > 30 then invalid_arg "Bitio.Writer.add_bits";
    t.acc <- (t.acc lsl bits) lor (value land ((1 lsl bits) - 1));
    t.nbits <- t.nbits + bits;
    if t.nbits >= 8 then flush_bytes t

  let add_bit t b = add_bits t ~value:(if b then 1 else 0) ~bits:1

  (* Byte-aligned writers blit; misaligned ones fall back to the
     bit path, byte by byte. Same wire bytes either way. *)
  let write_bytes t b ~pos ~len =
    if pos < 0 || len < 0 || pos > Bytes.length b - len then
      invalid_arg "Bitio.Writer.write_bytes";
    if t.nbits = 0 then Buffer.add_subbytes t.buf b pos len
    else
      for i = pos to pos + len - 1 do
        add_bits t ~value:(Char.code (Bytes.unsafe_get b i)) ~bits:8
      done

  let bit_length t = (Buffer.length t.buf * 8) + t.nbits

  let contents t =
    let tail =
      if t.nbits = 0 then ""
      else String.make 1 (Char.chr ((t.acc lsl (8 - t.nbits)) land 0xFF))
    in
    Bytes.of_string (Buffer.contents t.buf ^ tail)
end

module Reader = struct
  (* [acc] buffers the next [nbits] unread bits (the next bit in the
     stream is the most significant of the low [nbits]); [byte_pos]
     indexes the first byte not yet pulled into the accumulator.
     Invariant: acc < 2^nbits, nbits <= 62. *)
  type t = {
    data : bytes;
    mutable byte_pos : int;
    mutable acc : int;
    mutable nbits : int;
  }

  let create ?(pos = 0) data =
    if pos < 0 || pos > Bytes.length data then
      invalid_arg "Bitio.Reader.create";
    { data; byte_pos = pos; acc = 0; nbits = 0 }

  let bits_left t = ((Bytes.length t.data - t.byte_pos) * 8) + t.nbits

  let refill t =
    let n = Bytes.length t.data in
    while t.nbits <= 54 && t.byte_pos < n do
      t.acc <-
        (t.acc lsl 8) lor Char.code (Bytes.unsafe_get t.data t.byte_pos);
      t.byte_pos <- t.byte_pos + 1;
      t.nbits <- t.nbits + 8
    done

  (* Past the end of input [peek] pads with zero bits; only [consume]
     checks against the real stream length, exactly like table-driven
     zlib decoders expect. *)
  let peek t bits =
    if t.nbits < bits then refill t;
    if t.nbits >= bits then t.acc lsr (t.nbits - bits)
    else t.acc lsl (bits - t.nbits)

  let consume t bits =
    if bits > t.nbits then begin
      refill t;
      if bits > t.nbits then raise (Codec.Corrupt "Bitio: out of bits")
    end;
    t.nbits <- t.nbits - bits;
    t.acc <- t.acc land ((1 lsl t.nbits) - 1)

  let read_bits t bits =
    if bits < 0 || bits > 30 then invalid_arg "Bitio.Reader.read_bits";
    let v = peek t bits in
    consume t bits;
    v

  let read_bit t =
    if bits_left t <= 0 then raise (Codec.Corrupt "Bitio: out of bits");
    let v = peek t 1 in
    consume t 1;
    v = 1

  (* Byte-aligned readers drain the accumulator's whole bytes, then
     blit straight from the input; misaligned ones fall back to
     read_bits. Same consumed bits either way. *)
  let read_bytes t len =
    if len < 0 then invalid_arg "Bitio.Reader.read_bytes";
    if len * 8 > bits_left t then raise (Codec.Corrupt "Bitio: out of bits");
    let out = Bytes.create len in
    if t.nbits land 7 = 0 then begin
      let i = ref 0 in
      while t.nbits > 0 && !i < len do
        t.nbits <- t.nbits - 8;
        Bytes.unsafe_set out !i (Char.unsafe_chr ((t.acc lsr t.nbits) land 0xFF));
        t.acc <- t.acc land ((1 lsl t.nbits) - 1);
        incr i
      done;
      let rest = len - !i in
      Bytes.blit t.data t.byte_pos out !i rest;
      t.byte_pos <- t.byte_pos + rest
    end
    else
      for i = 0 to len - 1 do
        Bytes.unsafe_set out i (Char.unsafe_chr (read_bits t 8))
      done;
    out
end
