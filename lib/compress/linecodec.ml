type family =
  | Bdi
  | Cpack

let line_sizes = Lines.Line.sizes

let family_name = function Bdi -> "bdi" | Cpack -> "cpack"
let name f size = Printf.sprintf "%s-%d" (family_name f) size

let of_name s =
  let try_family f =
    let prefix = family_name f ^ "-" in
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      match int_of_string_opt (String.sub s pl (String.length s - pl)) with
      | Some size when List.mem size line_sizes -> Some (f, size)
      | _ -> None
    else None
  in
  match try_family Bdi with Some _ as r -> r | None -> try_family Cpack

(* Decoders bound the claimed original length before trusting it; the
   tag-section and total-size checks below then pin every other size
   to the real input, so nothing is allocated from corrupt framing. *)
let max_claim = 1 lsl 30

let corrupt fmt = Printf.ksprintf (fun m -> raise (Codec.Corrupt m)) fmt

let write_header w n =
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int n);
  Bitio.Writer.write_bytes w hdr ~pos:0 ~len:4

let read_header z =
  if Bytes.length z < 4 then corrupt "Linecodec: missing length header";
  let n = Int32.to_int (Bytes.get_int32_le z 0) land 0xFFFFFFFF in
  if n > max_claim then corrupt "Linecodec: absurd claimed length %d" n;
  n

let pad_to_byte w =
  let r = Bitio.Writer.bit_length w land 7 in
  if r > 0 then Bitio.Writer.add_bits w ~value:0 ~bits:(8 - r)

let skip_padding r ~bits_read =
  let pad = (8 - (bits_read land 7)) land 7 in
  if pad > 0 then ignore (Bitio.Reader.read_bits r pad)

let line_len ~line_size ~total i = min line_size (total - (i * line_size))

(* ------------------------------------------------------------------ *)
(* BDI                                                                 *)

let bdi_compress ~line_size b =
  let n = Bytes.length b in
  let nlines = (n + line_size - 1) / line_size in
  let encoded =
    Array.init nlines (fun i ->
        Lines.Bdi.compress b ~pos:(i * line_size)
          ~len:(line_len ~line_size ~total:n i))
  in
  let w = Bitio.Writer.create () in
  write_header w n;
  Array.iter
    (fun (enc, payload) ->
      Bitio.Writer.add_bits w ~value:enc ~bits:4;
      Bitio.Writer.add_bits w
        ~value:(Lines.Bdi.segments ~payload_bytes:(Bytes.length payload))
        ~bits:7)
    encoded;
  pad_to_byte w;
  Array.iter
    (fun (_, payload) ->
      Bitio.Writer.write_bytes w payload ~pos:0 ~len:(Bytes.length payload))
    encoded;
  Bitio.Writer.contents w

let bdi_decompress ~line_size z =
  let total = Bytes.length z in
  let n = read_header z in
  let nlines = (n + line_size - 1) / line_size in
  let tag_bytes = ((Lines.Bdi.tag_bits * nlines) + 7) / 8 in
  if 4 + tag_bytes > total then corrupt "Linecodec: truncated bdi tag section";
  let r = Bitio.Reader.create ~pos:4 z in
  let payload_of = Array.make nlines 0 in
  let encoding_of = Array.make nlines 0 in
  let payload_total = ref 0 in
  for i = 0 to nlines - 1 do
    let enc = Bitio.Reader.read_bits r 4 in
    let ptr = Bitio.Reader.read_bits r 7 in
    let len = line_len ~line_size ~total:n i in
    match Lines.Bdi.payload_bytes ~encoding:enc ~len with
    | None -> corrupt "Linecodec: bdi encoding %d invalid for %d-byte line" enc len
    | Some p ->
      if Lines.Bdi.segments ~payload_bytes:p <> ptr then
        corrupt "Linecodec: bdi segment pointer %d does not match encoding %d"
          ptr enc;
      encoding_of.(i) <- enc;
      payload_of.(i) <- p;
      payload_total := !payload_total + p
  done;
  skip_padding r ~bits_read:(Lines.Bdi.tag_bits * nlines);
  if 4 + tag_bytes + !payload_total <> total then
    corrupt "Linecodec: bdi stream is %d bytes, framing says %d" total
      (4 + tag_bytes + !payload_total);
  let out = Bytes.create n in
  for i = 0 to nlines - 1 do
    let payload = Bitio.Reader.read_bytes r payload_of.(i) in
    let len = line_len ~line_size ~total:n i in
    let line = Lines.Bdi.decompress ~encoding:encoding_of.(i) ~len payload in
    Bytes.blit line 0 out (i * line_size) len
  done;
  out

(* ------------------------------------------------------------------ *)
(* CPack                                                               *)

let cpack_compress ~line_size b =
  let n = Bytes.length b in
  let nlines = (n + line_size - 1) / line_size in
  let encoded =
    Array.init nlines (fun i ->
        Lines.Cpack.compress b ~pos:(i * line_size)
          ~len:(line_len ~line_size ~total:n i))
  in
  let payload_bytes codes =
    (List.fold_left (fun a (_, bits) -> a + bits) 0 codes + 7) / 8
  in
  let w = Bitio.Writer.create () in
  write_header w n;
  Array.iter
    (fun codes -> Bitio.Writer.add_bits w ~value:(payload_bytes codes) ~bits:7)
    encoded;
  pad_to_byte w;
  Array.iter
    (fun codes ->
      List.iter (fun (v, bits) -> Bitio.Writer.add_bits w ~value:v ~bits) codes;
      pad_to_byte w)
    encoded;
  Bitio.Writer.contents w

let cpack_decompress ~line_size z =
  let total = Bytes.length z in
  let n = read_header z in
  let nlines = (n + line_size - 1) / line_size in
  let tag_bytes = ((Lines.Cpack.tag_bits * nlines) + 7) / 8 in
  if 4 + tag_bytes > total then
    corrupt "Linecodec: truncated cpack tag section";
  let r = Bitio.Reader.create ~pos:4 z in
  let payload_of = Array.init nlines (fun _ -> Bitio.Reader.read_bits r 7) in
  let payload_total = Array.fold_left ( + ) 0 payload_of in
  skip_padding r ~bits_read:(Lines.Cpack.tag_bits * nlines);
  if 4 + tag_bytes + payload_total <> total then
    corrupt "Linecodec: cpack stream is %d bytes, framing says %d" total
      (4 + tag_bytes + payload_total);
  let out = Bytes.create n in
  for i = 0 to nlines - 1 do
    let payload = Bitio.Reader.read_bytes r payload_of.(i) in
    let pr = Bitio.Reader.create payload in
    let len = line_len ~line_size ~total:n i in
    let line =
      Lines.Cpack.decompress ~len ~read:(fun bits ->
          Bitio.Reader.read_bits pr bits)
    in
    (* the tag may not claim more bytes than the code stream fills *)
    if Bitio.Reader.bits_left pr >= 8 then
      corrupt "Linecodec: cpack payload longer than its code stream";
    Bytes.blit line 0 out (i * line_size) len
  done;
  out

(* ------------------------------------------------------------------ *)
(* Registry surface                                                    *)

let translate f x =
  try f x with Lines.Line.Corrupt m -> raise (Codec.Corrupt m)

let codec family line_size =
  let dec, comp = match family with Bdi -> (1, 2) | Cpack -> (2, 4) in
  let compress, decompress =
    match family with
    | Bdi -> (bdi_compress ~line_size, bdi_decompress ~line_size)
    | Cpack -> (cpack_compress ~line_size, cpack_decompress ~line_size)
  in
  Codec.make
    ~name:(name family line_size)
    ~dec_cycles_per_byte:dec ~comp_cycles_per_byte:comp
    ~compress:(translate compress)
    ~decompress:(translate decompress) ()

let all () =
  List.concat_map (fun f -> List.map (codec f) line_sizes) [ Bdi; Cpack ]

let cost_bits family b ~pos ~len =
  match family with
  | Bdi -> Lines.Bdi.cost_bits b ~pos ~len
  | Cpack -> Lines.Cpack.cost_bits b ~pos ~len
