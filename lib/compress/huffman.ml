let num_symbols = 256
let max_code_len = 30

(* ------------------------------------------------------------------ *)
(* Model construction                                                  *)

(* Two-queue Huffman construction over the present symbols; returns
   per-symbol code lengths. *)
let code_lengths freqs =
  if Array.length freqs <> num_symbols then
    invalid_arg "Huffman.code_lengths: need 256 frequencies";
  let present =
    Array.to_list (Array.mapi (fun s f -> (s, f)) freqs)
    |> List.filter (fun (_, f) -> f > 0)
  in
  let lengths = Array.make num_symbols 0 in
  match present with
  | [] -> lengths
  | [ (s, _) ] ->
    lengths.(s) <- 1;
    lengths
  | _ ->
    (* Nodes: leaf (symbol) or internal (children indices). *)
    let leaves =
      List.sort (fun (_, a) (_, b) -> compare a b) present |> Array.of_list
    in
    let n = Array.length leaves in
    (* parent.(i) for node ids: 0..n-1 leaves, n.. internal. *)
    let parent = Array.make ((2 * n) - 1) (-1) in
    let weight = Array.make ((2 * n) - 1) 0 in
    Array.iteri (fun i (_, f) -> weight.(i) <- f) leaves;
    let q1 = Queue.create () and q2 = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add i q1
    done;
    let next = ref n in
    let peek_weight q = weight.(Queue.peek q) in
    let take_min () =
      match (Queue.is_empty q1, Queue.is_empty q2) with
      | true, true -> assert false
      | true, false -> Queue.pop q2
      | false, true -> Queue.pop q1
      | false, false ->
        if peek_weight q1 <= peek_weight q2 then Queue.pop q1 else Queue.pop q2
    in
    while
      Queue.length q1 + Queue.length q2 > 1
    do
      let a = take_min () in
      let b = take_min () in
      let id = !next in
      incr next;
      weight.(id) <- weight.(a) + weight.(b);
      parent.(a) <- id;
      parent.(b) <- id;
      Queue.add id q2
    done;
    let depth_of i =
      let rec up d i = if parent.(i) = -1 then d else up (d + 1) parent.(i) in
      up 0 i
    in
    Array.iteri (fun i (s, _) -> lengths.(s) <- depth_of i) leaves;
    lengths

let canonical_codes lengths =
  let max_len = Array.fold_left max 0 lengths in
  if max_len > max_code_len then
    raise (Codec.Corrupt "huffman: code length too large");
  let count = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then count.(l) <- count.(l) + 1) lengths;
  let first_code = Array.make (max_len + 2) 0 in
  let code = ref 0 in
  for l = 1 to max_len do
    first_code.(l) <- !code;
    code := (!code + count.(l)) lsl 1
  done;
  let next = Array.copy first_code in
  let codes = Array.make num_symbols (0, 0) in
  for s = 0 to num_symbols - 1 do
    let l = lengths.(s) in
    if l > 0 then begin
      codes.(s) <- (next.(l), l);
      next.(l) <- next.(l) + 1
    end
  done;
  codes

(* Decoding tables for canonical codes: a zlib-style root lookup
   table resolves codes of up to [root_bits] bits with one peek — a
   single array index yields symbol and length together — while the
   rare longer codes fall back to a canonical first-code scan over
   one [max_len]-bit peek. No per-bit reads anywhere. *)

let root_bits_limit = 9

type decoder = {
  max_len : int;
  root_bits : int;
  table : int array;
      (* indexed by the next [root_bits] bits: [(sym lsl 5) lor len].
         len = 0 marks a prefix no code owns (corrupt stream); len =
         31 marks a code longer than [root_bits] (slow path). *)
  count : int array;  (* codes per length *)
  first_code : int array;
  first_rank : int array;  (* rank of first code of each length *)
  sym_by_rank : int array;  (* symbols sorted by (length, symbol) *)
}

let decoder_of_lengths lengths =
  let max_len = ref 0 in
  Array.iter (fun l -> if l > !max_len then max_len := l) lengths;
  let max_len = !max_len in
  if max_len = 0 then raise (Codec.Corrupt "huffman: empty code");
  if max_len > max_code_len then raise (Codec.Corrupt "huffman: length too large");
  let count = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then count.(l) <- count.(l) + 1) lengths;
  (* Kraft check: a canonical prefix code must not overflow. *)
  let kraft = ref 0 in
  for l = 1 to max_len do
    kraft := (!kraft lsl 1) + count.(l)
  done;
  if !kraft > 1 lsl max_len then raise (Codec.Corrupt "huffman: invalid code");
  let first_code = Array.make (max_len + 1) 0 in
  let first_rank = Array.make (max_len + 1) 0 in
  let code = ref 0 and rank = ref 0 in
  for l = 1 to max_len do
    first_code.(l) <- !code;
    first_rank.(l) <- !rank;
    code := (!code + count.(l)) lsl 1;
    rank := !rank + count.(l)
  done;
  (* Counting sort into canonical (length, symbol) rank order: the
     ascending symbol scan appends each symbol to its length bucket,
     and the buckets start at [first_rank]. *)
  let sym_by_rank = Array.make (max !rank 1) 0 in
  let next_rank = Array.copy first_rank in
  for s = 0 to num_symbols - 1 do
    let l = lengths.(s) in
    if l > 0 then begin
      sym_by_rank.(next_rank.(l)) <- s;
      next_rank.(l) <- next_rank.(l) + 1
    end
  done;
  let root_bits = min max_len root_bits_limit in
  let table = Array.make (1 lsl root_bits) 0 in
  for l = 1 to max_len do
    for r = 0 to count.(l) - 1 do
      let code = first_code.(l) + r in
      if l <= root_bits then begin
        let entry = (sym_by_rank.(first_rank.(l) + r) lsl 5) lor l in
        let base = code lsl (root_bits - l) in
        for p = base to base + (1 lsl (root_bits - l)) - 1 do
          table.(p) <- entry
        done
      end
      else table.(code lsr (l - root_bits)) <- 31
    done
  done;
  { max_len; root_bits; table; count; first_code; first_rank; sym_by_rank }

(* Code longer than the root table (or an unowned prefix): one
   [max_len]-bit peek, then the canonical scan over the remaining
   lengths. Out of the per-symbol hot loop so that loop stays small. *)
let decode_long d reader l =
  if l = 0 then raise (Codec.Corrupt "huffman: bad bitstream");
  let bits = Bitio.Reader.peek reader d.max_len in
  let rec scan l =
    if l > d.max_len then raise (Codec.Corrupt "huffman: bad bitstream")
    else
      let code = bits lsr (d.max_len - l) in
      let idx = code - d.first_code.(l) in
      if idx >= 0 && idx < d.count.(l) then begin
        Bitio.Reader.consume reader l;
        d.sym_by_rank.(d.first_rank.(l) + idx)
      end
      else scan (l + 1)
  in
  scan (d.root_bits + 1)

let decode_symbol d reader =
  let e = Array.unsafe_get d.table (Bitio.Reader.peek reader d.root_bits) in
  let l = e land 31 in
  if l <> 0 && l <= d.root_bits then begin
    Bitio.Reader.consume reader l;
    e lsr 5
  end
  else decode_long d reader l

(* ------------------------------------------------------------------ *)
(* Wire format helpers                                                 *)

let write_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let read_u32 b off =
  if Bytes.length b < off + 4 then
    raise (Codec.Corrupt "huffman: truncated header");
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let frequencies b =
  let freqs = Array.make num_symbols 0 in
  Bytes.iter (fun c -> freqs.(Char.code c) <- freqs.(Char.code c) + 1) b;
  freqs

let encode_payload codes b =
  let w = Bitio.Writer.create () in
  Bytes.iter
    (fun c ->
      let code, len = codes.(Char.code c) in
      if len = 0 then raise (Codec.Corrupt "huffman: unencodable symbol");
      Bitio.Writer.add_bits w ~value:code ~bits:len)
    b;
  Bitio.Writer.contents w

let decode_payload d b ~pos orig_len =
  (* Every symbol takes at least one bit, so a length prefix claiming
     more symbols than the payload has bits is corrupt — reject it
     before allocating the output. *)
  if orig_len > 8 * (Bytes.length b - pos) then
    raise (Codec.Corrupt "huffman: truncated payload");
  let out = Bytes.create orig_len in
  let table = d.table and root_bits = d.root_bits in
  let n = Bytes.length b in
  (* The bit accumulator is kept in locals rather than behind
     [Bitio.Reader] calls: without flambda the per-symbol peek/consume
     call overhead alone costs ~30% of the decode loop. Invariants
     match the Reader exactly — low [nbits] bits of [acc] are the next
     unread bits, MSB first — and refilling up front means any
     under-run left after it is a genuine end of stream. *)
  let acc = ref 0 and nbits = ref 0 and bp = ref pos in
  for i = 0 to orig_len - 1 do
    while !nbits <= 54 && !bp < n do
      acc := (!acc lsl 8) lor Char.code (Bytes.unsafe_get b !bp);
      incr bp;
      nbits := !nbits + 8
    done;
    let p =
      if !nbits >= root_bits then !acc lsr (!nbits - root_bits)
      else !acc lsl (root_bits - !nbits)
    in
    let e = Array.unsafe_get table p in
    let l = e land 31 in
    let sym, l =
      if l <> 0 && l <= root_bits then (e lsr 5, l)
      else if l = 0 then raise (Codec.Corrupt "huffman: bad bitstream")
      else begin
        (* Code longer than the root table: one [max_len]-bit peek,
           then the canonical scan over the remaining lengths. *)
        let bits =
          if !nbits >= d.max_len then !acc lsr (!nbits - d.max_len)
          else !acc lsl (d.max_len - !nbits)
        in
        let rec scan l =
          if l > d.max_len then raise (Codec.Corrupt "huffman: bad bitstream")
          else
            let code = bits lsr (d.max_len - l) in
            let idx = code - d.first_code.(l) in
            if idx >= 0 && idx < d.count.(l) then
              (d.sym_by_rank.(d.first_rank.(l) + idx), l)
            else scan (l + 1)
        in
        scan (d.root_bits + 1)
      end
    in
    if l > !nbits then raise (Codec.Corrupt "Bitio: out of bits");
    nbits := !nbits - l;
    acc := !acc land ((1 lsl !nbits) - 1);
    Bytes.unsafe_set out i (Char.unsafe_chr sym)
  done;
  out

(* ------------------------------------------------------------------ *)
(* Per-block codec                                                     *)

let compress b =
  let n = Bytes.length b in
  let buf = Buffer.create (n + 8) in
  write_u32 buf n;
  if n > 0 then begin
    let lengths = code_lengths (frequencies b) in
    let codes = canonical_codes lengths in
    let syms =
      Array.to_list (Array.mapi (fun s l -> (s, l)) lengths)
      |> List.filter (fun (_, l) -> l > 0)
    in
    Buffer.add_char buf (Char.chr (List.length syms - 1));
    List.iter
      (fun (s, l) ->
        Buffer.add_char buf (Char.chr s);
        Buffer.add_char buf (Char.chr l))
      syms;
    Buffer.add_bytes buf (encode_payload codes b)
  end;
  Bytes.of_string (Buffer.contents buf)

let decompress b =
  let orig_len = read_u32 b 0 in
  if orig_len = 0 then Bytes.create 0
  else begin
    if Bytes.length b < 5 then raise (Codec.Corrupt "huffman: truncated table");
    let nsyms = Char.code (Bytes.get b 4) + 1 in
    let table_end = 5 + (2 * nsyms) in
    if Bytes.length b < table_end then
      raise (Codec.Corrupt "huffman: truncated table");
    let lengths = Array.make num_symbols 0 in
    for i = 0 to nsyms - 1 do
      let s = Char.code (Bytes.get b (5 + (2 * i))) in
      let l = Char.code (Bytes.get b (5 + (2 * i) + 1)) in
      if l = 0 || l > max_code_len then
        raise (Codec.Corrupt "huffman: bad code length");
      if lengths.(s) <> 0 then raise (Codec.Corrupt "huffman: duplicate symbol");
      lengths.(s) <- l
    done;
    let d = decoder_of_lengths lengths in
    decode_payload d b ~pos:table_end orig_len
  end

let codec =
  Codec.make ~name:"huffman" ~dec_cycles_per_byte:6 ~comp_cycles_per_byte:9
    ~compress ~decompress ()

(* ------------------------------------------------------------------ *)
(* Shared-model codecs                                                 *)

let write_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let read_u16 b off =
  if Bytes.length b < off + 2 then
    raise (Codec.Corrupt "huffman: truncated header");
  Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let check_block_len b =
  if Bytes.length b >= 0x10000 then
    invalid_arg "Huffman shared codecs handle blocks under 64 KiB"

let shared ~corpus =
  let freqs = frequencies corpus in
  (* Scaled add-one smoothing: every byte stays encodable, but rare
     unseen symbols cannot dilute a small training corpus. *)
  let freqs = Array.map (fun f -> (f * 256) + 1) freqs in
  let lengths = code_lengths freqs in
  let codes = canonical_codes lengths in
  let d = decoder_of_lengths lengths in
  let compress b =
    check_block_len b;
    let buf = Buffer.create (Bytes.length b + 2) in
    write_u16 buf (Bytes.length b);
    Buffer.add_bytes buf (encode_payload codes b);
    Bytes.of_string (Buffer.contents buf)
  in
  let decompress b =
    let orig_len = read_u16 b 0 in
    decode_payload d b ~pos:2 orig_len
  in
  Codec.make ~name:"huffman-shared" ~dec_cycles_per_byte:6
    ~comp_cycles_per_byte:7 ~compress ~decompress ()

(* Positional models: instruction streams are word-structured, so byte
   position mod 4 (immediate low bytes vs. opcode bytes) has far more
   predictive power than a single global distribution. One shared
   canonical model per position — the CodePack-style approach. *)
let shared_positional ~corpus =
  let num_positions = 4 in
  let freqs = Array.init num_positions (fun _ -> Array.make num_symbols 1) in
  Bytes.iteri
    (fun i c ->
      let pos = i mod num_positions in
      let s = Char.code c in
      freqs.(pos).(s) <- freqs.(pos).(s) + 256)
    corpus;
  let models =
    Array.map
      (fun f ->
        let lengths = code_lengths f in
        (canonical_codes lengths, decoder_of_lengths lengths))
      freqs
  in
  let compress b =
    check_block_len b;
    let buf = Buffer.create (Bytes.length b + 2) in
    write_u16 buf (Bytes.length b);
    let w = Bitio.Writer.create () in
    Bytes.iteri
      (fun i c ->
        let codes, _ = models.(i mod num_positions) in
        let code, len = codes.(Char.code c) in
        Bitio.Writer.add_bits w ~value:code ~bits:len)
      b;
    Buffer.add_bytes buf (Bitio.Writer.contents w);
    Bytes.of_string (Buffer.contents buf)
  in
  let decompress b =
    let orig_len = read_u16 b 0 in
    if orig_len > 8 * (Bytes.length b - 2) then
      raise (Codec.Corrupt "huffman: truncated payload");
    let reader = Bitio.Reader.create ~pos:2 b in
    let out = Bytes.create orig_len in
    for i = 0 to orig_len - 1 do
      let _, d = models.(i mod num_positions) in
      Bytes.unsafe_set out i (Char.unsafe_chr (decode_symbol d reader))
    done;
    out
  in
  Codec.make ~name:"huffman-positional" ~dec_cycles_per_byte:6
    ~comp_cycles_per_byte:7 ~compress ~decompress ()
