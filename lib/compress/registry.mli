(** Codec registry used by the CLI, the experiments and the tests. *)

val all : unit -> Codec.t list
(** The built-in codecs — the block coders (null, rle, huffman, lzss,
    lzw, mtf-rle) plus the cache-line family ({!Linecodec}: bdi-16/
    32/64, cpack-16/32/64) — each wrapped with
    {!Codec.never_expanding} so pathological blocks only cost one
    extra byte. *)

val find : string -> Codec.t option
(** Lookup by name among {!all}. *)

val find_exn : string -> Codec.t
(** @raise Invalid_argument for unknown names. *)

val default : Codec.t
(** The codec used by the experiments unless stated otherwise:
    [lzss]. *)

val shared_huffman : corpus:bytes -> Codec.t
(** {!Huffman.shared} wrapped with {!Codec.never_expanding}. *)

val code_codec : corpus:bytes -> Codec.t
(** {!Huffman.shared_positional} wrapped with
    {!Codec.never_expanding}: the recommended codec for instruction
    images (train it on the whole program). *)

val dict_codec : corpus:bytes -> Codec.t
(** {!Dict.shared} wrapped with {!Codec.never_expanding}. *)

val shared_all : corpus:bytes -> Codec.t list
(** The three shared-model codecs (global Huffman, positional Huffman,
    instruction dictionary) trained on [corpus]. *)

val names : unit -> string list
