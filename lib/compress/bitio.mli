(** Bit-level readers and writers (MSB-first within each byte), used by
    the Huffman and LZW codecs.

    Both directions buffer whole words in a 62-bit accumulator, so a
    [w]-bit access costs O(1) shifts and masks rather than [w]
    per-bit div/mod steps. The byte-level format is unchanged from
    the historical per-bit implementation. *)

module Writer : sig
  type t

  val create : unit -> t

  val add_bit : t -> bool -> unit

  val add_bits : t -> value:int -> bits:int -> unit
  (** Writes the low [bits] bits of [value], most significant first.
      @raise Invalid_argument if [bits] is outside [0, 30]. *)

  val write_bytes : t -> bytes -> pos:int -> len:int -> unit
  (** Appends [len] whole bytes from [b] starting at [pos], MSB-first
      — exactly [8 * len] calls to {!add_bits} with 8-bit values, but
      a single buffer blit when the writer is byte-aligned (the line
      codecs' payload sections and immediate fallback hit this path).
      @raise Invalid_argument on an out-of-bounds slice. *)

  val bit_length : t -> int

  val contents : t -> bytes
  (** Pads the final byte with zero bits. *)
end

module Reader : sig
  type t

  val create : ?pos:int -> bytes -> t
  (** [create ?pos data] reads from [data] starting at byte offset
      [pos] (default 0) — decoders with a byte-aligned header can skip
      it without copying the payload.
      @raise Invalid_argument if [pos] is outside [0, length data]. *)

  val bits_left : t -> int

  val peek : t -> int -> int
  (** [peek t bits] returns the next [bits] bits (MSB-first) without
      consuming them, zero-padded past the end of input. [bits] must
      be at most 30; this is the fast path for table-driven decoders
      and performs no width validation of its own. *)

  val consume : t -> int -> unit
  (** Advances by [bits] bits.
      @raise Compress.Codec.Corrupt if fewer real bits remain. *)

  val read_bit : t -> bool
  (** @raise Compress.Codec.Corrupt past the end of input. *)

  val read_bits : t -> int -> int
  (** [read_bits t bits] = [peek] then [consume].
      @raise Invalid_argument if [bits] is outside [0, 30] (mirrors
      {!Writer.add_bits}).
      @raise Compress.Codec.Corrupt past the end of input. *)

  val read_bytes : t -> int -> bytes
  (** [read_bytes t len] reads [len] whole bytes — equivalent to [len]
      8-bit {!read_bits} calls, but a single blit from the input when
      the reader is byte-aligned. Checks the full length up front.
      @raise Compress.Codec.Corrupt if fewer than [8 * len] bits
      remain. *)
end
