let code_bits = 12
let dict_limit = 1 lsl code_bits

let write_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let read_u32 b off =
  if Bytes.length b < off + 4 then raise (Codec.Corrupt "lzw: truncated header");
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

(* The dictionary is a trie over codes, stored in three flat arrays:
   [first_child.(c)] is the newest entry extending phrase [c],
   [sibling.(e)] the next entry sharing e's parent, [ext.(e)] the
   byte entry [e] appends. Lookup of (cur, byte) walks the child
   chain; no per-symbol tuple or string is ever allocated. *)
let compress b =
  let n = Bytes.length b in
  let header = Buffer.create (4 + n) in
  write_u32 header n;
  let w = Bitio.Writer.create () in
  if n > 0 then begin
    let first_child = Array.make dict_limit (-1) in
    let sibling = Array.make dict_limit (-1) in
    let ext = Bytes.make dict_limit '\000' in
    let next_code = ref 256 in
    let reset () =
      Array.fill first_child 0 dict_limit (-1);
      next_code := 256
    in
    let cur = ref (Char.code (Bytes.get b 0)) in
    for i = 1 to n - 1 do
      let c = Bytes.unsafe_get b i in
      let child = ref (Array.unsafe_get first_child !cur) in
      while !child >= 0 && Bytes.unsafe_get ext !child <> c do
        child := Array.unsafe_get sibling !child
      done;
      if !child >= 0 then cur := !child
      else begin
        Bitio.Writer.add_bits w ~value:!cur ~bits:code_bits;
        if !next_code < dict_limit then begin
          let id = !next_code in
          Array.unsafe_set sibling id (Array.unsafe_get first_child !cur);
          Array.unsafe_set first_child !cur id;
          Bytes.unsafe_set ext id c;
          incr next_code
        end
        else reset ();
        cur := Char.code c
      end
    done;
    Bitio.Writer.add_bits w ~value:!cur ~bits:code_bits
  end;
  Buffer.add_bytes header (Bitio.Writer.contents w);
  Bytes.of_string (Buffer.contents header)

let decompress b =
  let orig_len = read_u32 b 0 in
  if orig_len = 0 then Bytes.create 0
  else begin
    let payload_bytes = Bytes.length b - 4 in
    (* Each 12-bit code expands to at most [dict_limit] bytes, so a
       header claiming more than [codes * dict_limit] output is
       corrupt — reject before allocating. *)
    if orig_len > payload_bytes * 8 / code_bits * dict_limit then
      raise (Codec.Corrupt "lzw: truncated payload");
    let r = Bitio.Reader.create (Bytes.sub b 4 payload_bytes) in
    let out = Bytes.create orig_len in
    let pos = ref 0 in
    (* Dictionary entries as flat arrays: [prefix] is the parent code
       (-1 for the 256 roots), [suffix] the appended byte, [elen] the
       expansion length and [first] its first byte, so an entry is
       emitted by walking the parent chain backwards straight into
       the output — no list or string per entry. *)
    let prefix = Array.make dict_limit (-1) in
    let suffix = Bytes.make dict_limit '\000' in
    let first = Bytes.make dict_limit '\000' in
    let elen = Array.make dict_limit 1 in
    for c = 0 to 255 do
      Bytes.unsafe_set suffix c (Char.unsafe_chr c);
      Bytes.unsafe_set first c (Char.unsafe_chr c)
    done;
    let next_code = ref 256 in
    let reset () = next_code := 256 in
    (* Writes code's expansion at [pos]; raises on out-of-range codes
       and on expansions overrunning the declared length. *)
    let emit code =
      if code < 0 || code >= !next_code then
        raise (Codec.Corrupt "lzw: bad code");
      let l = Array.unsafe_get elen code in
      if !pos + l > orig_len then
        raise (Codec.Corrupt "lzw: length mismatch");
      let k = ref (!pos + l - 1) and c = ref code in
      while !c >= 256 do
        Bytes.unsafe_set out !k (Bytes.unsafe_get suffix !c);
        decr k;
        c := Array.unsafe_get prefix !c
      done;
      Bytes.unsafe_set out !k (Char.unsafe_chr !c);
      pos := !pos + l
    in
    let read_code () = Bitio.Reader.read_bits r code_bits in
    let prev = ref (read_code ()) in
    if !prev >= 256 then raise (Codec.Corrupt "lzw: bad first code");
    emit !prev;
    while !pos < orig_len do
      let code = read_code () in
      (* The new entry (if the dictionary still has room) is always
         prev's expansion plus one byte; what that byte is depends on
         whether [code] is known (its first byte) or the KwKwK case
         (prev's own first byte). *)
      let efirst =
        if code < !next_code then begin
          emit code;
          Bytes.unsafe_get first code
        end
        else if code = !next_code then begin
          (* KwKwK case: entry = prev ^ first(prev) *)
          let lp = Array.unsafe_get elen !prev in
          if !pos + lp + 1 > orig_len then
            raise (Codec.Corrupt "lzw: length mismatch");
          let p = !pos in
          emit !prev;
          Bytes.unsafe_set out !pos (Bytes.unsafe_get out p);
          incr pos;
          Bytes.unsafe_get first !prev
        end
        else raise (Codec.Corrupt "lzw: code out of range")
      in
      if !next_code < dict_limit then begin
        let id = !next_code in
        Array.unsafe_set prefix id !prev;
        Bytes.unsafe_set suffix id efirst;
        Bytes.unsafe_set first id (Bytes.unsafe_get first !prev);
        Array.unsafe_set elen id (Array.unsafe_get elen !prev + 1);
        incr next_code;
        prev := code;
        if !next_code = dict_limit then begin
          (* Mirror the encoder's reset. *)
          reset ();
          if !pos < orig_len then begin
            let c = read_code () in
            if c >= 256 then raise (Codec.Corrupt "lzw: bad code after reset");
            emit c;
            prev := c
          end
        end
      end
      else prev := code
    done;
    out
  end

let codec =
  Codec.make ~name:"lzw" ~dec_cycles_per_byte:5 ~comp_cycles_per_byte:10
    ~compress ~decompress ()
