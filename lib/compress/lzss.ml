let window = 4096
let min_match = 3
let max_match = 18

(* Hash chains over 3-byte prefixes keep the search near-linear. *)
let hash b i =
  (Char.code (Bytes.unsafe_get b i) lsl 10)
  lxor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 5)
  lxor Char.code (Bytes.unsafe_get b (i + 2))
  land 0xFFF

let max_chain = 64

(* Chains are two int arrays: [head.(h)] is the most recent position
   with hash [h], [prev.(i)] the next older position sharing i's
   hash. Walking head/prev visits candidates most-recent-first —
   the same order (and therefore the same matches, byte for byte)
   as the Hashtbl.find_all list this replaces, without building a
   list per lookup. *)
let find_match b i n head prev =
  if i + min_match > n then None
  else begin
    let best_len = ref 0 and best_pos = ref (-1) in
    let tries = ref 0 in
    let limit = i - window in
    let j = ref (Array.unsafe_get head (hash b i)) in
    let continue = ref true in
    while !continue do
      let jj = !j in
      if jj < 0 || jj < limit || !tries >= max_chain then continue := false
      else begin
        incr tries;
        (* A candidate can only beat [best_len] if it also matches at
           offset [best_len]; checking that byte first skips most
           losers without the full extension loop. *)
        if
          i + !best_len >= n
          && !best_len > 0 (* no room to improve on any match *)
        then continue := false
        else if
          !best_len > 0
          && Bytes.unsafe_get b (jj + !best_len)
             <> Bytes.unsafe_get b (i + !best_len)
        then j := Array.unsafe_get prev jj
        else begin
          let len =
            let k = ref 0 in
            while
              !k < max_match
              && i + !k < n
              && Bytes.unsafe_get b (jj + !k) = Bytes.unsafe_get b (i + !k)
            do
              incr k
            done;
            !k
          in
          if len > !best_len then begin
            best_len := len;
            best_pos := jj
          end;
          if !best_len >= max_match then continue := false
          else j := Array.unsafe_get prev jj
        end
      end
    done;
    if !best_len >= min_match then Some (!best_pos, !best_len) else None
  end

let compress b =
  let n = Bytes.length b in
  let out = Buffer.create (n + (n / 8) + 1) in
  let head = Array.make 4096 (-1) in
  let prev = Array.make (max n 1) (-1) in
  let add_pos i =
    if i + min_match <= n then begin
      let h = hash b i in
      Array.unsafe_set prev i (Array.unsafe_get head h);
      Array.unsafe_set head h i
    end
  in
  (* Pending group: up to 8 items buffered until the flag byte is known. *)
  let flags = ref 0 and nitems = ref 0 in
  let group = Buffer.create 17 in
  let flush () =
    if !nitems > 0 then begin
      Buffer.add_char out (Char.chr (!flags lsl (8 - !nitems) land 0xFF));
      Buffer.add_buffer out group;
      Buffer.clear group;
      flags := 0;
      nitems := 0
    end
  in
  let push_item is_literal =
    flags := (!flags lsl 1) lor if is_literal then 1 else 0;
    incr nitems;
    if !nitems = 8 then flush ()
  in
  let rec loop i =
    if i < n then
      match find_match b i n head prev with
      | Some (pos, len) ->
        let dist = i - pos in
        Buffer.add_char group (Char.chr (((dist - 1) lsr 4) land 0xFF));
        Buffer.add_char group
          (Char.chr ((((dist - 1) land 0xF) lsl 4) lor (len - min_match)));
        push_item false;
        for k = i to i + len - 1 do
          add_pos k
        done;
        loop (i + len)
      | None ->
        Buffer.add_char group (Bytes.get b i);
        push_item true;
        add_pos i;
        loop (i + 1)
  in
  loop 0;
  flush ();
  Bytes.of_string (Buffer.contents out)

let decompress b =
  let n = Bytes.length b in
  (* Output length is not in the format; decompress into a growing
     byte buffer we own, so match copies are Bytes.blit (or a tight
     overlap loop) instead of per-byte Buffer.nth reads. *)
  let cap = ref (max 64 (n * 2)) in
  let out = ref (Bytes.create !cap) in
  let len = ref 0 in
  let ensure extra =
    if !len + extra > !cap then begin
      while !len + extra > !cap do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit !out 0 grown 0 !len;
      out := grown
    end
  in
  let i = ref 0 in
  let byte () =
    if !i >= n then raise (Codec.Corrupt "lzss: truncated input");
    let c = Char.code (Bytes.unsafe_get b !i) in
    incr i;
    c
  in
  while !i < n do
    let flags = byte () in
    let item = ref 0 in
    while !item < 8 && !i < n do
      let is_literal = (flags lsr (7 - !item)) land 1 = 1 in
      if is_literal then begin
        let c = byte () in
        ensure 1;
        Bytes.unsafe_set !out !len (Char.unsafe_chr c);
        incr len
      end
      else begin
        let hi = byte () in
        let lo = byte () in
        let dist = ((hi lsl 4) lor (lo lsr 4)) + 1 in
        let mlen = (lo land 0xF) + min_match in
        let start = !len - dist in
        if start < 0 then raise (Codec.Corrupt "lzss: bad back-reference");
        ensure mlen;
        if dist >= mlen then Bytes.blit !out start !out !len mlen
        else begin
          (* Overlapping copy: bytes produced in this very match feed
             later positions, so copy forward one byte at a time. *)
          let o = !out in
          for k = 0 to mlen - 1 do
            Bytes.unsafe_set o (!len + k) (Bytes.unsafe_get o (start + k))
          done
        end;
        len := !len + mlen
      end;
      incr item
    done
  done;
  Bytes.sub !out 0 !len

let codec =
  Codec.make ~name:"lzss" ~dec_cycles_per_byte:3 ~comp_cycles_per_byte:12
    ~compress ~decompress ()
