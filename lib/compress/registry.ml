let raw () =
  [ Null.codec; Rle.codec; Huffman.codec; Lzss.codec; Lzw.codec; Mtf.codec ]
  @ Linecodec.all ()

let all () = List.map Codec.never_expanding (raw ())

let find name =
  List.find_opt (fun c -> c.Codec.name = name) (all ())

let find_exn name =
  match find name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Compress.Registry.find_exn: %S" name)

let default = Codec.never_expanding Lzss.codec

let shared_huffman ~corpus = Codec.never_expanding (Huffman.shared ~corpus)

let code_codec ~corpus =
  Codec.never_expanding (Huffman.shared_positional ~corpus)

let dict_codec ~corpus = Codec.never_expanding (Dict.shared ~corpus)

let shared_all ~corpus =
  [ shared_huffman ~corpus; code_codec ~corpus; dict_codec ~corpus ]

let names () = List.map (fun c -> c.Codec.name) (all ())
