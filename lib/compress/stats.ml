type t = {
  codec_name : string;
  blocks : int;
  original_bytes : int;
  compressed_bytes : int;
  ratio : float;
  worst_block_ratio : float;
  best_block_ratio : float;
}

let measure codec blocks =
  let original = ref 0 and compressed = ref 0 in
  let worst = ref 0.0 and best = ref infinity in
  let count = ref 0 in
  List.iter
    (fun b ->
      let n = Bytes.length b in
      if n > 0 then begin
        incr count;
        let c = Bytes.length (codec.Codec.compress b) in
        original := !original + n;
        compressed := !compressed + c;
        let r = float_of_int c /. float_of_int n in
        if r > !worst then worst := r;
        if r < !best then best := r
      end)
    blocks;
  {
    codec_name = codec.Codec.name;
    blocks = !count;
    original_bytes = !original;
    compressed_bytes = !compressed;
    ratio =
      (if !original = 0 then 1.0
       else float_of_int !compressed /. float_of_int !original);
    worst_block_ratio = (if !count = 0 then 1.0 else !worst);
    best_block_ratio = (if !count = 0 then 1.0 else !best);
  }

let pp ppf t =
  Format.fprintf ppf
    "%s: %d blocks, %d -> %d bytes (ratio %.3f, best %.3f, worst %.3f)"
    t.codec_name t.blocks t.original_bytes t.compressed_bytes t.ratio
    t.best_block_ratio t.worst_block_ratio

(* ------------------------------------------------------------------ *)
(* Throughput                                                          *)

type throughput = {
  tp_codec_name : string;
  comp_mbps : float;
  dec_mbps : float;
  tp_ratio : float;
}

let mib = 1024.0 *. 1024.0

(* Repeats [f] over whole passes until [min_time_s] of wall clock has
   elapsed, then converts to MiB/s of [bytes_per_pass]. A fast codec
   on a tiny input can finish inside the clock's resolution, leaving
   [elapsed] at exactly 0.0 — clamp to one clock tick so the rate
   stays finite (it is a floor on the true rate, never [inf]). *)
let min_elapsed_s = 1e-9

let time_mbps ~min_time_s ~bytes_per_pass f =
  if bytes_per_pass = 0 then 0.0
  else begin
    let t0 = Unix.gettimeofday () in
    let passes = ref 0 in
    let elapsed = ref 0.0 in
    let again = ref true in
    (* test-after-body: even [min_time_s = 0.] measures one real pass
       instead of dividing zero passes by zero seconds *)
    while !again do
      f ();
      incr passes;
      elapsed := Unix.gettimeofday () -. t0;
      if !elapsed >= min_time_s then again := false
    done;
    let elapsed = Float.max !elapsed min_elapsed_s in
    float_of_int !passes *. float_of_int bytes_per_pass /. elapsed /. mib
  end

let throughput ?(min_time_s = 0.05) codec blocks =
  let blocks = List.filter (fun b -> Bytes.length b > 0) blocks in
  let original = List.fold_left (fun a b -> a + Bytes.length b) 0 blocks in
  let compressed = List.map codec.Codec.compress blocks in
  let compressed_bytes =
    List.fold_left (fun a b -> a + Bytes.length b) 0 compressed
  in
  let comp_mbps =
    time_mbps ~min_time_s ~bytes_per_pass:original (fun () ->
        List.iter (fun b -> ignore (codec.Codec.compress b)) blocks)
  in
  let dec_mbps =
    time_mbps ~min_time_s ~bytes_per_pass:original (fun () ->
        List.iter (fun z -> ignore (codec.Codec.decompress z)) compressed)
  in
  {
    tp_codec_name = codec.Codec.name;
    comp_mbps;
    dec_mbps;
    tp_ratio =
      (if original = 0 then 1.0
       else float_of_int compressed_bytes /. float_of_int original);
  }
