let escape = 0xFF
let max_entries = 254

let read_word b off =
  Char.code (Bytes.unsafe_get b off)
  lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (off + 3)) lsl 24)

let dictionary_words ~corpus =
  let freq = Hashtbl.create 256 in
  for w = 0 to (Bytes.length corpus / 4) - 1 do
    let word = read_word corpus (4 * w) in
    Hashtbl.replace freq word
      (1 + Option.value ~default:0 (Hashtbl.find_opt freq word))
  done;
  Hashtbl.fold (fun word count acc -> (word, count) :: acc) freq []
  |> List.filter (fun (_, count) -> count >= 2)
  |> List.sort (fun (w1, c1) (w2, c2) ->
         if c1 <> c2 then compare c2 c1 else compare w1 w2)
  |> List.filteri (fun i _ -> i < max_entries)
  |> List.map fst

let write_u16 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))

let read_u16 b off =
  if Bytes.length b < off + 2 then raise (Codec.Corrupt "dict: truncated header");
  Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

(* The word -> index map is a flat open-addressing table (linear
   probing, power-of-two capacity well above the 254 possible
   entries), built once per shared codec: the per-word lookup in the
   compressor is a couple of array reads with no allocation. *)
let probe_bits = 10
let probe_size = 1 lsl probe_bits
let probe_hash w = (w * 0x9E3779B1) lsr 11 land (probe_size - 1)

let build_probe table =
  let keys = Array.make probe_size 0 in
  let idx = Array.make probe_size (-1) in
  Array.iteri
    (fun i w ->
      let h = ref (probe_hash w) in
      while idx.(!h) >= 0 && keys.(!h) <> w do
        h := (!h + 1) land (probe_size - 1)
      done;
      if idx.(!h) < 0 then begin
        keys.(!h) <- w;
        idx.(!h) <- i
      end)
    table;
  (keys, idx)

let probe_find keys idx w =
  let h = ref (probe_hash w) in
  while
    Array.unsafe_get idx !h >= 0 && Array.unsafe_get keys !h <> w
  do
    h := (!h + 1) land (probe_size - 1)
  done;
  if Array.unsafe_get idx !h >= 0 && Array.unsafe_get keys !h = w then
    Array.unsafe_get idx !h
  else -1

let shared ~corpus =
  let words = dictionary_words ~corpus in
  let table = Array.of_list words in
  let keys, idx = build_probe table in
  let compress b =
    let n = Bytes.length b in
    if n >= 0x10000 then
      invalid_arg "Dict.shared handles blocks under 64 KiB";
    (* Worst case: 2-byte header plus 5 bytes per escaped word. *)
    let words = n / 4 in
    let out = Bytes.create (2 + (words * 5) + (n - (words * 4))) in
    write_u16 out 0 n;
    let pos = ref 2 in
    for w = 0 to words - 1 do
      let word = read_word b (4 * w) in
      match probe_find keys idx word with
      | -1 ->
        Bytes.unsafe_set out !pos (Char.unsafe_chr escape);
        Bytes.blit b (4 * w) out (!pos + 1) 4;
        pos := !pos + 5
      | i ->
        Bytes.unsafe_set out !pos (Char.unsafe_chr i);
        incr pos
    done;
    Bytes.blit b (words * 4) out !pos (n - (words * 4));
    pos := !pos + n - (words * 4);
    Bytes.sub out 0 !pos
  in
  let decompress b =
    let orig_len = read_u16 b 0 in
    let out = Bytes.create orig_len in
    let pos = ref 2 in
    let byte () =
      if !pos >= Bytes.length b then raise (Codec.Corrupt "dict: truncated");
      let c = Char.code (Bytes.unsafe_get b !pos) in
      incr pos;
      c
    in
    let opos = ref 0 in
    let words = orig_len / 4 in
    for _ = 1 to words do
      (match byte () with
      | c when c = escape ->
        for k = 0 to 3 do
          Bytes.unsafe_set out (!opos + k) (Char.unsafe_chr (byte ()))
        done
      | i ->
        if i >= Array.length table then
          raise (Codec.Corrupt "dict: index beyond dictionary");
        let word = Array.unsafe_get table i in
        Bytes.unsafe_set out !opos (Char.unsafe_chr (word land 0xFF));
        Bytes.unsafe_set out (!opos + 1) (Char.unsafe_chr ((word lsr 8) land 0xFF));
        Bytes.unsafe_set out (!opos + 2) (Char.unsafe_chr ((word lsr 16) land 0xFF));
        Bytes.unsafe_set out (!opos + 3)
          (Char.unsafe_chr ((word lsr 24) land 0xFF)));
      opos := !opos + 4
    done;
    for _ = 1 to orig_len - (words * 4) do
      Bytes.unsafe_set out !opos (Char.unsafe_chr (byte ()));
      incr opos
    done;
    out
  in
  Codec.make ~name:"dict" ~dec_cycles_per_byte:1 ~comp_cycles_per_byte:2
    ~compress ~decompress ()
