type spec =
  | Kedge
  | Loop_aware of { weight : int }
  | Clock
  | Pin_hot of { pinned : int list }

let spec_name = function
  | Kedge -> "kedge"
  | Loop_aware _ -> "loop-aware"
  | Clock -> "clock"
  | Pin_hot _ -> "pin-hot"

type ctx = {
  blocks : int;
  k : int;
  k_of : (int -> int) option;
  graph : Cfg.Graph.t option;
  budget : int option;
  size_of : (int -> int) option;
  totals : (unit -> (string * int) list) option;
}

type t = {
  name : string;
  on_materialize : block:int -> step:int -> unit;
  on_ready : block:int -> time:int -> unit;
  on_execute : block:int -> step:int -> time:int -> unit;
  rearm : block:int -> step:int -> unit;
  due : step:int -> int list;
  victim : exclude:(int -> bool) -> int option;
  on_release : block:int -> unit;
  describe : unit -> string;
}

(* ------------------------------------------------------------------ *)
(* k-edge counters + LRU victims: the paper's own retention scheme,
   shared by [Kedge], [Loop_aware] and (as fallback) [Pin_hot]. *)

let kedge_lru ~name ?k_of ~blocks ~k ~describe () =
  let kedge = Memsim.Kedge.create ?k_of ~blocks ~k () in
  let lru = Memsim.Lru.create () in
  {
    name;
    on_materialize = (fun ~block ~step -> Memsim.Kedge.track kedge ~block ~step);
    on_ready = (fun ~block ~time -> Memsim.Lru.touch lru block ~time);
    on_execute =
      (fun ~block ~step ~time ->
        Memsim.Kedge.track kedge ~block ~step;
        Memsim.Lru.touch lru block ~time);
    rearm = (fun ~block ~step -> Memsim.Kedge.track kedge ~block ~step);
    due = (fun ~step -> Memsim.Kedge.due kedge ~step);
    victim = (fun ~exclude -> Memsim.Lru.victim lru ~exclude ());
    on_release =
      (fun ~block ->
        Memsim.Kedge.untrack kedge ~block;
        Memsim.Lru.remove lru block);
    describe;
  }

let base_k ctx block =
  match ctx.k_of with None -> ctx.k | Some f -> f block

let kedge ctx =
  kedge_lru ~name:"kedge" ?k_of:ctx.k_of ~blocks:ctx.blocks ~k:ctx.k
    ~describe:(fun () -> Printf.sprintf "k-edge/LRU, k=%d" ctx.k)
    ()

let loop_aware ~weight ctx =
  if weight < 1 then
    invalid_arg "Residency.Policy: loop-aware weight must be >= 1";
  let graph =
    match ctx.graph with
    | Some g -> g
    | None ->
      invalid_arg "Residency.Policy: loop-aware retention needs a CFG"
  in
  let depth = Cfg.Loop.loop_depth graph in
  let k_of b =
    let d = if b >= 0 && b < Array.length depth then depth.(b) else 0 in
    let scale = 1 + (weight * d) in
    let base = base_k ctx b in
    if base >= max_int / scale then max_int else base * scale
  in
  kedge_lru ~name:"loop-aware" ~k_of ~blocks:ctx.blocks ~k:ctx.k
    ~describe:(fun () ->
      Printf.sprintf "loop-aware k-edge, k=%d scaled by (1 + %d*depth)" ctx.k
        weight)
    ()

(* ------------------------------------------------------------------ *)
(* Clock: second-chance approximation of the k-edge/LRU pair with O(1)
   state per block.  Each resident copy has a reference bit, set on
   execution, and a timer re-armed every [k] edges.  When the timer
   fires with the bit set, the copy gets a second chance (bit cleared,
   timer re-armed); with the bit clear it is reported due.  Budget
   victims come from a clock-hand sweep that clears bits as it
   passes. *)

let clock ctx =
  if ctx.k < 1 then invalid_arg "Residency.Policy: clock k must be >= 1";
  let blocks = ctx.blocks and k = ctx.k in
  let in_area = Array.make blocks false in
  let refbit = Array.make blocks false in
  let armed = Array.make blocks (-1) in
  let due_at : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let hand = ref 0 in
  let arm b ~step =
    armed.(b) <- step;
    if k <= max_int - step then begin
      let fire = step + k in
      let l = Option.value ~default:[] (Hashtbl.find_opt due_at fire) in
      Hashtbl.replace due_at fire (b :: l)
    end
  in
  {
    name = "clock";
    on_materialize =
      (fun ~block ~step ->
        in_area.(block) <- true;
        arm block ~step);
    on_ready = (fun ~block:_ ~time:_ -> ());
    (* The bit is set by execution only, never by materialization, so
       the engine's materialize-then-execute and the runtime's
       execute-then-trap orders leave identical state. *)
    on_execute = (fun ~block ~step:_ ~time:_ -> refbit.(block) <- true);
    rearm = (fun ~block ~step -> arm block ~step);
    due =
      (fun ~step ->
        match Hashtbl.find_opt due_at step with
        | None -> []
        | Some queued ->
          Hashtbl.remove due_at step;
          List.sort_uniq compare queued
          |> List.filter_map (fun b ->
                 if not (in_area.(b) && armed.(b) + k = step) then None
                 else if refbit.(b) then begin
                   refbit.(b) <- false;
                   arm b ~step;
                   None
                 end
                 else begin
                   (* Re-arm even when reporting the block due: the host
                      may spare it (branch target, §5) and the timer
                      must stay alive for the surviving copy. *)
                   arm b ~step;
                   Some b
                 end));
    victim =
      (fun ~exclude ->
        let rec sweep i remaining =
          if remaining = 0 then None
          else begin
            let b = i mod blocks in
            if in_area.(b) && not (exclude b) then
              if refbit.(b) then begin
                refbit.(b) <- false;
                sweep (b + 1) (remaining - 1)
              end
              else begin
                hand := b + 1;
                Some b
              end
            else sweep (b + 1) (remaining - 1)
          end
        in
        sweep !hand (2 * blocks));
    on_release =
      (fun ~block ->
        in_area.(block) <- false;
        refbit.(block) <- false;
        armed.(block) <- -1);
    describe = (fun () -> Printf.sprintf "clock (second chance), period=%d" k);
  }

(* ------------------------------------------------------------------ *)
(* Pin-hot: a profile-driven pinned set that is exempt from all
   retention bookkeeping — never due, never a victim — on top of the
   plain k-edge/LRU scheme for everything else. *)

let pin_hot ~pinned ctx =
  List.iter
    (fun b ->
      if b < 0 || b >= ctx.blocks then
        invalid_arg "Residency.Policy: pinned block out of range")
    pinned;
  let distinct = List.sort_uniq compare pinned in
  (match (ctx.budget, ctx.size_of) with
  | Some cap, Some size ->
    let need = List.fold_left (fun a b -> a + size b) 0 distinct in
    if need > cap then
      invalid_arg
        (Printf.sprintf
           "Residency.Policy: pinned set needs %d bytes but the budget is %d"
           need cap)
  | _ -> ());
  let pin = Array.make ctx.blocks false in
  List.iter (fun b -> pin.(b) <- true) distinct;
  let inner = kedge ctx in
  {
    inner with
    name = "pin-hot";
    on_materialize =
      (fun ~block ~step -> if not pin.(block) then inner.on_materialize ~block ~step);
    on_ready = (fun ~block ~time -> if not pin.(block) then inner.on_ready ~block ~time);
    on_execute =
      (fun ~block ~step ~time ->
        if not pin.(block) then inner.on_execute ~block ~step ~time);
    rearm = (fun ~block ~step -> if not pin.(block) then inner.rearm ~block ~step);
    victim = (fun ~exclude -> inner.victim ~exclude:(fun b -> pin.(b) || exclude b));
    describe =
      (fun () ->
        Printf.sprintf "pin-hot (%d pinned) over k-edge, k=%d"
          (List.length distinct) ctx.k);
  }

let instantiate spec ctx =
  if ctx.blocks < 1 then invalid_arg "Residency.Policy: blocks must be >= 1";
  match spec with
  | Kedge -> kedge ctx
  | Loop_aware { weight } -> loop_aware ~weight ctx
  | Clock -> clock ctx
  | Pin_hot { pinned } -> pin_hot ~pinned ctx
