(** The decompressed-copy area manager: one copy-lifecycle engine
    shared by the timing model, the executable runtime and the
    baselines.

    An area couples a retention {!Policy.t} (when copies die) with the
    remember-set bookkeeping every host needs (which branch sites were
    patched to point at each copy, paper §5) and with {!Sim.Events}
    emission for the discard/evict vocabulary.

    The area is generic in the {e site} representation: the timing
    model records the branching block's id ([int]), the executable
    runtime records concrete patched slots ([copy * slot]). [site_key]
    must injectively map a site to an [int] — the area uses it to
    deduplicate repeated patches of the same site. *)

type 'site t

val create :
  policy:Policy.t ->
  blocks:int ->
  ?emit:(Sim.Events.t -> unit) ->
  ?now:(unit -> int) ->
  site_key:('site -> int) ->
  unit ->
  'site t
(** [emit]/[now] are used only by {!discard} and {!evict} (hosts that
    emit their own events use {!release} instead). *)

val policy : 'site t -> Policy.t

(** {1 Retention hooks} — thin delegates to the policy; see
    {!Policy.t} for semantics. *)

val on_materialize : 'site t -> block:int -> step:int -> unit
val on_ready : 'site t -> block:int -> time:int -> unit
val on_execute : 'site t -> block:int -> step:int -> time:int -> unit
val rearm : 'site t -> block:int -> step:int -> unit
val due : 'site t -> step:int -> int list
val victim : 'site t -> exclude:(int -> bool) -> int option

(** {1 Remember sets} *)

val record_site : 'site t -> target:int -> site:'site -> bool
(** Records that [site] was patched to point at [target]'s copy.
    Returns [true] if the site was new ([false] = already recorded, no
    patch was needed). *)

val site_count : 'site t -> target:int -> int
val total_sites : 'site t -> int

val forget_sites : 'site t -> target:int -> where:('site -> bool) -> int
(** Drops recorded sites matching [where] without patching them back —
    used when the {e site's own} copy disappears and its patched branch
    goes with it. Returns how many were dropped. *)

val forget_key : 'site t -> target:int -> key:int -> int
(** [forget_sites] specialised to "the site whose [site_key] is [key]":
    returns 1 if such a site was recorded (and is now dropped), else 0.
    Closure-free, for per-step callers. *)

(** {1 Copy death} *)

val release : 'site t -> block:int -> patch_back:('site -> bool) -> int
(** Ends [block]'s copy: flushes its remember set through [patch_back]
    (in recording order; the return value counts [true] results, i.e.
    patches actually performed) and tells the policy to drop its
    state. Emits nothing — for hosts that emit their own
    discard/evict events. *)

val release_count : 'site t -> block:int -> int
(** {!release} when every site trivially patches back ([patch_back]
    would be [fun _ -> true] and pure): returns the number of recorded
    sites without traversing them. Closure-free, for per-step
    callers. *)

val discard :
  ?wasted:bool -> 'site t -> block:int -> patch_back:('site -> bool) -> int
(** {!release}, then emits [Discard] stamped with [now ()]. *)

val evict : 'site t -> block:int -> patch_back:('site -> bool) -> int
(** {!release}, then emits [Evict] stamped with [now ()]. *)
