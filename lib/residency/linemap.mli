(** Address-space line map: the geometry of a line-granular residency
    surface.

    The paper's unit of residency is the basic block; a compressed
    instruction cache's is the fixed-size line. This module projects a
    CFG's blocks onto cache lines of a given size: every [line_size]-
    aligned window of the image that at least one block touches gets a
    dense line id, each block knows the lines it spans (a line on a
    block boundary belongs to both neighbours), and a block trace can
    be expanded into the line trace an I-cache would see — each block
    visit touches its lines in address order, with the block's
    execution cycles split across them.

    Pure geometry: no policy, no bytes. {!Core.Lineview} combines it
    with real line contents and per-line compressed sizes, and the
    executable runtime uses it to account decompression per line. *)

type t = {
  line_size : int;
  nlines : int;
  addr : int array;  (** dense line id -> image byte offset (aligned) *)
  len : int array;
      (** dense line id -> bytes the image actually covers, [<= line_size]
          (short only for the last line of the image) *)
  of_block : int array array;
      (** block id -> the dense line ids it spans, ascending *)
}

val build : line_size:int -> Cfg.Graph.t -> t
(** @raise Invalid_argument if [line_size < 4]. *)

val expand_trace : t -> Cfg.Graph.t -> trace:int array -> int array * int array
(** [(line_trace, step_cycles)]: each block visit becomes its lines in
    address order; the visit's [exec_cycles] is split evenly across
    them, remainder to the earliest lines, so totals are preserved
    exactly. *)
