type 'site t = {
  policy : Policy.t;
  blocks : int;
  site_key : 'site -> int;
  emit : Sim.Events.t -> unit;
  now : unit -> int;
  keys : Memsim.Remember.t;  (* site keys, for O(log n) dedup *)
  sites : 'site list array;  (* payloads, most recent first *)
}

let create ~policy ~blocks ?(emit = fun (_ : Sim.Events.t) -> ())
    ?(now = fun () -> 0) ~site_key () =
  if blocks < 1 then invalid_arg "Residency.Area.create: blocks must be >= 1";
  {
    policy;
    blocks;
    site_key;
    emit;
    now;
    keys = Memsim.Remember.create ~blocks;
    sites = Array.make blocks [];
  }

let policy t = t.policy
let on_materialize t ~block ~step = t.policy.Policy.on_materialize ~block ~step
let on_ready t ~block ~time = t.policy.Policy.on_ready ~block ~time

let on_execute t ~block ~step ~time =
  t.policy.Policy.on_execute ~block ~step ~time

let rearm t ~block ~step = t.policy.Policy.rearm ~block ~step
let due t ~step = t.policy.Policy.due ~step
let victim t ~exclude = t.policy.Policy.victim ~exclude

let record_site t ~target ~site =
  if Memsim.Remember.record t.keys ~target ~site:(t.site_key site) then begin
    t.sites.(target) <- site :: t.sites.(target);
    true
  end
  else false

let site_count t ~target = Memsim.Remember.cardinal t.keys ~target
let total_sites t = Memsim.Remember.total_sites t.keys

(* Closure-free variants of [forget_sites]/[release] for the engine's
   hot loop, where the payload IS the key ([site_key] is the identity
   on block ids) and every site patches back. Remember sets hold no
   duplicates, so at most one payload matches. *)
let rec remove_payload t key = function
  | [] -> []
  | s :: tl -> if t.site_key s = key then tl else s :: remove_payload t key tl

let forget_key t ~target ~key =
  if Memsim.Remember.remove_site t.keys ~target ~site:key then begin
    t.sites.(target) <- remove_payload t key t.sites.(target);
    1
  end
  else 0

let release_count t ~block =
  t.sites.(block) <- [];
  let n = Memsim.Remember.flush t.keys ~target:block in
  t.policy.Policy.on_release ~block;
  n

let forget_sites t ~target ~where =
  (* Fast path: most targets have no recorded sites at any moment, and
     the engine probes every successor of a dying block. *)
  match t.sites.(target) with
  | [] -> 0
  | sites ->
    let removed = ref 0 in
    t.sites.(target) <-
      List.filter
        (fun s ->
          if where s then begin
            ignore
              (Memsim.Remember.remove_site t.keys ~target ~site:(t.site_key s));
            incr removed;
            false
          end
          else true)
        sites;
    !removed

let release t ~block ~patch_back =
  match t.sites.(block) with
  | [] ->
    ignore (Memsim.Remember.flush t.keys ~target:block);
    t.policy.Policy.on_release ~block;
    0
  | l ->
    let sites = List.rev l in
    t.sites.(block) <- [];
    ignore (Memsim.Remember.flush t.keys ~target:block);
    t.policy.Policy.on_release ~block;
    List.fold_left (fun n s -> if patch_back s then n + 1 else n) 0 sites

let discard ?(wasted = false) t ~block ~patch_back =
  let patched_back = release t ~block ~patch_back in
  t.emit (Sim.Events.Discard { block; at = t.now (); patched_back; wasted });
  patched_back

let evict t ~block ~patch_back =
  let patched_back = release t ~block ~patch_back in
  t.emit (Sim.Events.Evict { block; at = t.now () });
  patched_back
