(** Retention policies for the decompressed-copy area.

    A policy decides {e when a decompressed copy stops being worth its
    memory}: which copies are due for deletion after an edge traversal
    and which copy to sacrifice when a decompression would overflow the
    memory budget. The paper hard-codes one answer — k-edge counters
    with LRU victims (§3, §5, §2) — this interface makes it pluggable
    so the timing model ({!Core.Engine}), the executable runtime
    ({!Runtime}) and the baselines all share one implementation.

    A policy is a record of callbacks over block ids; it owns whatever
    state it needs (counters, bits, heaps) and is driven by an
    {!Area.t}, which adds the remember-set bookkeeping and event
    emission common to every policy. *)

type spec =
  | Kedge  (** The paper's scheme: k-edge counters, LRU budget victims. *)
  | Loop_aware of { weight : int }
      (** k-edge with per-block k scaled by [1 + weight * loop_depth]:
          copies nested in hot loops survive proportionally longer. *)
  | Clock
      (** Second-chance approximation of k-edge/LRU with O(1) state per
          block: a reference bit set on execution and a timer re-armed
          every [k] edges; a copy is due when its timer fires with the
          bit clear. Budget victims come from a clock-hand sweep. *)
  | Pin_hot of { pinned : int list }
      (** Profile-driven pinned set: pinned blocks are never due and
          never budget victims; everything else runs plain k-edge/LRU.
          Instantiation rejects pins that alone exceed the budget. *)

val spec_name : spec -> string
(** CLI-facing name: ["kedge"], ["loop-aware"], ["clock"], ["pin-hot"]. *)

type ctx = {
  blocks : int;  (** Number of blocks (ids are [0 .. blocks-1]). *)
  k : int;  (** The uniform deletion distance. *)
  k_of : (int -> int) option;  (** Adaptive per-block k, if any. *)
  graph : Cfg.Graph.t option;  (** Needed by [Loop_aware]. *)
  budget : int option;  (** Decompressed-area byte budget, if any. *)
  size_of : (int -> int) option;
      (** Uncompressed block size, for budget validation. *)
  totals : (unit -> (string * int) list) option;
      (** Live per-dimension cost totals of the host run, as
          [(dimension name, amount)] pairs (see {!Sim.Cost.Acc}
          [dimension_totals]) — lets a policy observe how much each
          cost dimension has accumulated so far without this library
          depending on the cost vocabulary. *)
}
(** Everything a [spec] may need to build its runtime state. *)

type t = {
  name : string;
  on_materialize : block:int -> step:int -> unit;
      (** A copy of [block] starts existing (demand decompression or
          prefetch issue) at edge-step [step]. *)
  on_ready : block:int -> time:int -> unit;
      (** The copy became executable at cycle [time] (prefetch
          completion, or immediately for demand decompression). *)
  on_execute : block:int -> step:int -> time:int -> unit;
      (** The block executed at edge-step [step], cycle [time]. *)
  rearm : block:int -> step:int -> unit;
      (** The host spared a copy the policy reported due (branch
          target, or still in flight): restart its retention window. *)
  due : step:int -> int list;
      (** Copies due for deletion after the edge traversal that made
          the step counter reach [step]. Sorted, each block at most
          once per window; the host may spare any of them (then it
          must [rearm]). *)
  victim : exclude:(int -> bool) -> int option;
      (** A resident copy to evict for budget room, or [None]. *)
  on_release : block:int -> unit;
      (** The copy is gone (deleted, evicted or flushed): drop all
          policy state for [block]. *)
  describe : unit -> string;
}
(** An instantiated policy. All callbacks are total over
    [0 .. blocks-1]; calling them for blocks without a live copy is
    allowed and must be harmless. *)

val instantiate : spec -> ctx -> t
(** Builds the policy state for one simulation run. A [t] is single-use
    and stateful — instantiate a fresh one per run.
    @raise Invalid_argument on nonsensical parameters: [k < 1],
    [blocks < 1], loop-aware without a graph or [weight < 1], pinned
    ids out of range, or a pinned set that alone exceeds the budget. *)

val kedge_lru :
  name:string ->
  ?k_of:(int -> int) ->
  blocks:int ->
  k:int ->
  describe:(unit -> string) ->
  unit ->
  t
(** The k-edge/LRU building block, exposed so custom policies (e.g. the
    baselines') can wrap or embed it. *)
