type t = {
  line_size : int;
  nlines : int;
  addr : int array;
  len : int array;
  of_block : int array array;
}

let build ~line_size g =
  if line_size < 4 then invalid_arg "Residency.Linemap.build: line_size < 4";
  let blocks = Cfg.Graph.blocks g in
  let image_end =
    Array.fold_left
      (fun a (b : Cfg.Graph.block) -> max a (b.addr + b.byte_size))
      0 blocks
  in
  (* Raw line index -> dense id, for lines some block touches. Blocks
     are contiguous in practice but nothing here assumes it. *)
  let raw_count = (image_end + line_size - 1) / line_size in
  let dense_of_raw = Array.make raw_count (-1) in
  Array.iter
    (fun (b : Cfg.Graph.block) ->
      if b.byte_size > 0 then
        for raw = b.addr / line_size to (b.addr + b.byte_size - 1) / line_size
        do
          dense_of_raw.(raw) <- 0
        done)
    blocks;
  let nlines = ref 0 in
  Array.iteri
    (fun raw v ->
      if v >= 0 then begin
        dense_of_raw.(raw) <- !nlines;
        incr nlines
      end)
    dense_of_raw;
  let nlines = !nlines in
  let addr = Array.make nlines 0 in
  let len = Array.make nlines 0 in
  Array.iteri
    (fun raw d ->
      if d >= 0 then begin
        addr.(d) <- raw * line_size;
        len.(d) <- min line_size (image_end - (raw * line_size))
      end)
    dense_of_raw;
  let of_block =
    Array.map
      (fun (b : Cfg.Graph.block) ->
        if b.byte_size = 0 then [||]
        else begin
          let lo = b.addr / line_size in
          let hi = (b.addr + b.byte_size - 1) / line_size in
          Array.init (hi - lo + 1) (fun i -> dense_of_raw.(lo + i))
        end)
      blocks
  in
  { line_size; nlines; addr; len; of_block }

let expand_trace t g ~trace =
  let total = ref 0 in
  Array.iter (fun b -> total := !total + Array.length t.of_block.(b)) trace;
  let line_trace = Array.make !total 0 in
  let step_cycles = Array.make !total 0 in
  let pos = ref 0 in
  Array.iter
    (fun b ->
      let lines = t.of_block.(b) in
      let m = Array.length lines in
      if m > 0 then begin
        let c = (Cfg.Graph.block g b).exec_cycles in
        let share = c / m and extra = c mod m in
        Array.iteri
          (fun i l ->
            line_trace.(!pos) <- l;
            step_cycles.(!pos) <- (share + if i < extra then 1 else 0);
            incr pos)
          lines
      end)
    trace;
  (line_trace, step_cycles)
