(** An {e executable} implementation of the paper's §5 scheme — not a
    timing model (that is {!Core.Engine}) but the real mechanism,
    running real programs:

    - the program image is stored {e only} in compressed form (each
      basic block compressed with a real codec);
    - fetching from a compressed (or deleted-copy) address raises the
      memory-protection exception; the handler {e really} decompresses
      the block's bytes, decodes them, relocates the instructions into
      a fresh copy (rewriting pc-relative targets to absolute home
      addresses and appending a synthetic jump for fallthrough), and
      redirects the pc;
    - the jump that faulted is {e really} patched to target the copy,
      and recorded in the target block's {e remember set}, so
      steady-state re-entry costs nothing;
    - the k-edge algorithm {e really} deletes copies, patching every
      remembered site back to its home target first (§5's patch-back);
      calls materialize {e home} return addresses, so no reference to
      a deleted copy can survive anywhere — which is also what makes
      recycling the copy address space safe.

    Because the machine executes the relocated copies for real, a
    workload's checksum coming out right under any k is end-to-end
    evidence that compression, decompression, relocation, patching and
    deletion are all correct. *)

type stats = {
  instructions : int;  (** instructions executed *)
  traps : int;  (** memory-protection exceptions taken *)
  decompressions : int;  (** handler decompressions, reloads included *)
  patches : int;  (** jump sites rewritten to copy addresses *)
  unpatches : int;
      (** remember-set patch-backs performed when copies are deleted *)
  deletions : int;  (** k-edge copy deletions (flushed copies included) *)
  flushes : int;
      (** address-space recycles: all copies retired at once when the
          relocation window fills — rare, and safe because un-patching
          plus home-valued return addresses leave no reference to any
          retired copy *)
  edges : int;  (** control transfers observed *)
  peak_copy_bytes : int;  (** high-water mark of live copies *)
  live_copy_bytes : int;  (** at halt *)
  compressed_image_bytes : int;
  original_image_bytes : int;
  energy_nj : int;
      (** total energy charged for traps, patches, patch-backs and
          decompressions under the run's cost model; 0 under the
          default [paper-2005] profile *)
}

type error =
  | Out_of_fuel of stats
  | Machine_fault of { pc : int; message : string; stats : stats }

val run :
  ?fuel:int ->
  ?k:int ->
  ?retention:Residency.Policy.spec ->
  ?codec:Compress.Codec.t ->
  ?cost:Sim.Cost.t ->
  ?profile:string ->
  ?sink:Sim.Events.sink ->
  ?registry:Sim.Metrics.t ->
  ?line_size:int ->
  Eris.Program.t ->
  (Eris.Machine.t * stats, error) result
(** Executes the program from an all-compressed image until [Halt].
    [k] (default 8) is the k-edge deletion distance; [retention]
    (default {!Residency.Policy.Kedge}) selects which copies survive —
    the runtime and {!Core.Engine} drive the same {!Residency.Area},
    so any retention policy behaves identically in both; [codec]
    defaults to the positional shared-Huffman model trained on this
    image. The returned machine exposes final registers and data
    memory.

    [sink] streams the execution as {!Sim.Events} (the runtime has no
    cycle clock, so [at] is the executed-instruction count; event
    [cycles] fields are priced by [cost], defaulting to the codec's
    per-byte rates over the named device [profile] — [paper-2005]
    when neither is given; an explicit [cost] wins). The sink is
    {e not} closed. [registry] receives the final {!stats} via
    {!register_stats} on both success and failure.

    [line_size] switches the image to compressed-I-cache accounting:
    the image is compressed per {!Residency.Linemap} cache line
    instead of per block, a trap really decompresses only the target
    block's lines that no live copy already covers (so
    [decompressions] counts {e lines}), and a line leaves residency
    when the last copy spanning it is deleted. Relocation stays
    block-shaped, so the executed instruction stream — and any
    workload checksum — is unchanged; only decompression work,
    [compressed_image_bytes], and the priced costs move.
    @raise Invalid_argument on an unknown [profile] or a [line_size]
    below 4. *)

val run_source :
  ?fuel:int ->
  ?k:int ->
  ?retention:Residency.Policy.spec ->
  ?codec:Compress.Codec.t ->
  ?cost:Sim.Cost.t ->
  ?profile:string ->
  ?sink:Sim.Events.sink ->
  ?registry:Sim.Metrics.t ->
  ?line_size:int ->
  string ->
  (Eris.Machine.t * stats, error) result
(** {!run} over assembled source. @raise Eris.Asm.Error on syntax
    problems. *)

val register_stats :
  ?labels:(string * string) list -> Sim.Metrics.t -> stats -> unit
(** Publishes every [stats] field as a counter under its field name
    into the shared registry. *)
