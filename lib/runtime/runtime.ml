type stats = {
  instructions : int;
  traps : int;
  decompressions : int;
  patches : int;
  unpatches : int;
  deletions : int;
  flushes : int;
  edges : int;
  peak_copy_bytes : int;
  live_copy_bytes : int;
  compressed_image_bytes : int;
  original_image_bytes : int;
  energy_nj : int;
}

type error =
  | Out_of_fuel of stats
  | Machine_fault of { pc : int; message : string; stats : stats }

(* ------------------------------------------------------------------ *)
(* Per-block relocation layout                                         *)

(* Each basic block has one fixed relocation layout, computed once:
   how its instructions expand into copy slots.

   - conditional branches become an inverted skip-branch plus an
     unconditional [jal r0] (so every outward transfer is a patchable
     22-bit jump);
   - linking jumps (calls) become [lui rd / ori rd / jal r0]: the
     return address is materialized as the {e home} address of the
     next instruction, so return addresses never point into copies and
     deleting a copy can never strand a return;
   - blocks that can fall through get a synthetic trailing jump to the
     next home block.

   Together with remember-set un-patching on deletion (below), no
   reference to a deleted copy can survive anywhere — which is what
   makes recycling the copy address space safe. *)
type slot =
  | Plain of Eris.Types.instruction
  | Skip of Eris.Types.cond * Eris.Types.reg * Eris.Types.reg
      (** inverted branch over the next slot *)
  | Jump of int  (** [jal r0] to this home target; the patchable kind *)

type layout = {
  slots : slot array;
  home_offs : int array;  (* length = slots + 1; last = block size *)
}

exception Runtime_bug of string

let needs_fallthrough (last : Eris.Types.instruction) =
  match last with
  | Branch _ | Alu _ | Alui _ | Lui _ | Load _ | Store _ -> true
  | Jal _ | Jalr _ | Halt -> false

let invert_cond (c : Eris.Types.cond) =
  match c with
  | Eris.Types.Eq -> Eris.Types.Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt

let layout_of_block (b : Cfg.Graph.block) decoded =
  let rev = ref [] in
  let add slot home_off = rev := (slot, home_off) :: !rev in
  Array.iteri
    (fun i instr ->
      let home_off = 4 * i in
      let home_pc = b.addr + home_off in
      match (instr : Eris.Types.instruction) with
      | Branch (c, rs1, rs2, off) ->
        add (Skip (invert_cond c, rs1, rs2)) home_off;
        add (Jump (home_pc + 4 + (4 * off))) home_off
      | Jal (rd, off) ->
        let target = home_pc + 4 + (4 * off) in
        if Eris.Types.reg_index rd <> 0 then begin
          (* set the link register to the HOME return address *)
          let ret = home_pc + 4 in
          if not (Eris.Types.uimm18_fits (ret lsr 14)) then
            raise (Runtime_bug "image too large for call relocation");
          add (Plain (Eris.Types.Lui (rd, ret lsr 14))) home_off;
          add (Plain (Eris.Types.Alui (Or, rd, rd, ret land 0x3FFF))) home_off
        end;
        add (Jump target) home_off
      | Alu _ | Alui _ | Lui _ | Load _ | Store _ | Jalr _ | Halt ->
        add (Plain instr) home_off)
    decoded;
  if needs_fallthrough decoded.(Array.length decoded - 1) then
    add (Jump (b.addr + b.byte_size)) b.byte_size;
  let pairs = Array.of_list (List.rev !rev) in
  {
    slots = Array.map fst pairs;
    home_offs =
      Array.init
        (Array.length pairs + 1)
        (fun i -> if i < Array.length pairs then snd pairs.(i) else b.byte_size);
  }

(* The instruction a slot holds when (re)targeted at its home address. *)
let materialize layout ~base idx =
  match layout.slots.(idx) with
  | Plain i -> i
  | Skip (c, rs1, rs2) -> Eris.Types.Branch (c, rs1, rs2, 1)
  | Jump home_target ->
    Eris.Types.Jal (Eris.Types.r0, (home_target - (base + (4 * idx) + 4)) / 4)

(* ------------------------------------------------------------------ *)
(* Copies                                                              *)

type copy = {
  block : int;
  base : int;
  mutable instrs : Eris.Types.instruction array;  (* emptied on retirement *)
  mutable live : bool;
}

(* Line-granular accounting (compressed I-cache mode): the image is
   compressed per cache line instead of per block, a trap decompresses
   only the target block's lines that no live copy already covers, and
   a line leaves residency when the last copy referencing it dies.
   Relocation itself stays block-shaped — copies are still whole
   blocks — so the executed instruction stream is identical; only the
   decompression work and the compressed image change. *)
type linestate = {
  lmap : Residency.Linemap.t;
  line_z : bytes array;  (* per-line compressed streams *)
  line_refs : int array;  (* live copies referencing each line *)
}

type state = {
  prog : Eris.Program.t;
  graph : Cfg.Graph.t;
  machine : Eris.Machine.t;
  codec : Compress.Codec.t;
  cost : Sim.Cost.t;
      (* prices the events (the runtime itself has no cycle clock;
         [at] is the executed-instruction count) *)
  acc : Sim.Cost.Acc.acc;
  snk : Sim.Events.sink;
  ev : Sim.Events.Packed.chunk;
      (* every event — the runtime's own and the area's — funnels
         through this one chunk, so stream order survives batching *)
  compressed : bytes array;
  lines : linestate option;
  layouts : layout array;
  area : (copy * int) Residency.Area.t;
      (* copy lifecycle: the retention policy plus the paper's remember
         sets, for real — per target block, the patched jump sites
         (copy, slot) currently pointing at its copy *)
  by_block : copy option array;
  mutable copies : copy array;  (* current epoch, base-ordered *)
  mutable ncopies : int;
  copy_base : int;
  copy_limit : int;
  mutable copy_ptr : int;
  mutable live_bytes : int;
  mutable peak_bytes : int;
  mutable last_site : (copy * int) option;
  mutable traps : int;
  mutable decompressions : int;
  mutable patches : int;
  mutable unpatches : int;
  mutable deletions : int;
  mutable flushes : int;
  mutable edges : int;
}

let image_size st = Eris.Program.byte_size st.prog
let copy_bytes c = 4 * Array.length c.instrs
let at st = Eris.Machine.instr_count st.machine

(* Make room for one more packed event (flush the chunk if full). *)
let emit_room st =
  if Sim.Events.Packed.is_full st.ev then begin
    st.snk.Sim.Events.emit_chunk st.ev;
    Sim.Events.Packed.clear st.ev
  end

let emit_drain st =
  if Sim.Events.Packed.length st.ev > 0 then begin
    st.snk.Sim.Events.emit_chunk st.ev;
    Sim.Events.Packed.clear st.ev
  end

(* Greatest current-epoch copy with base <= pc. *)
let copy_at st pc =
  let lo = ref 0 and hi = ref (st.ncopies - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if st.copies.(mid).base <= pc then begin
      found := Some st.copies.(mid);
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !found

let exec_slot st pc =
  match copy_at st pc with
  | Some c
    when c.live && pc >= c.base && pc < c.base + copy_bytes c && pc mod 4 = 0
    ->
    Some (c, (pc - c.base) / 4)
  | Some _ | None -> None

(* With home return addresses and deletion-time un-patching, every
   valid pc outside a live copy is a home address. *)
let home_of st pc =
  if pc >= 0 && pc < image_size st && pc mod 4 = 0 then Some pc else None

(* ------------------------------------------------------------------ *)
(* Patching and the remember sets                                      *)

let patch_site st (c, idx) ~target_block ~target_addr =
  if c.live then begin
    match st.layouts.(c.block).slots.(idx) with
    | Jump _ ->
      let site_pc = c.base + (4 * idx) in
      let patched = Eris.Types.Jal (Eris.Types.r0, (target_addr - (site_pc + 4)) / 4) in
      (match Eris.Types.validate patched with
      | Ok () ->
        if Residency.Area.record_site st.area ~target:target_block ~site:(c, idx)
        then begin
          c.instrs.(idx) <- patched;
          st.patches <- st.patches + 1;
          Sim.Cost.Acc.charge st.acc Sim.Cost.Patch
            (Sim.Cost.patch_charge st.cost);
          emit_room st;
          Sim.Events.Packed.push_patch st.ev ~at:(at st) ~target:target_block
            ~site:c.block
        end
      | Error _ -> () (* out of reach: leave it faulting *))
    | Plain _ | Skip _ -> () (* jalr sites and the like: not patchable *)
  end

(* Patch one remembered site back to the home address (the §5
   patch-back step); sites whose copy is itself gone need nothing. *)
let unpatch_site st ~target (c, idx) =
  if c.live then begin
    c.instrs.(idx) <- materialize st.layouts.(c.block) ~base:c.base idx;
    st.unpatches <- st.unpatches + 1;
    Sim.Cost.Acc.charge st.acc Sim.Cost.Patch_back
      (Sim.Cost.patch_back_charge st.cost ~sites:1);
    emit_room st;
    Sim.Events.Packed.push_unpatch st.ev ~at:(at st) ~target ~site:c.block;
    true
  end
  else false

(* A dying copy drops its claim on its lines; a line with no live
   claimant leaves residency and will cost a real decompression next
   time. *)
let line_release st block_id =
  match st.lines with
  | None -> ()
  | Some ls ->
    Array.iter
      (fun l -> ls.line_refs.(l) <- ls.line_refs.(l) - 1)
      ls.lmap.Residency.Linemap.of_block.(block_id)

let line_acquire st block_id =
  match st.lines with
  | None -> ()
  | Some ls ->
    Array.iter
      (fun l -> ls.line_refs.(l) <- ls.line_refs.(l) + 1)
      ls.lmap.Residency.Linemap.of_block.(block_id)

let delete_copy st c =
  ignore
    (Residency.Area.discard st.area ~block:c.block
       ~patch_back:(unpatch_site st ~target:c.block));
  c.live <- false;
  st.by_block.(c.block) <- None;
  st.live_bytes <- st.live_bytes - copy_bytes c;
  c.instrs <- [||];
  line_release st c.block;
  st.deletions <- st.deletions + 1

(* Retire everything and recycle the address space. Safe because
   nothing can reference a copy once its remember set is patched back
   and return addresses are home addresses. *)
let flush st =
  let retired = ref 0 in
  Array.iteri
    (fun b copy ->
      ignore
        (Residency.Area.release st.area ~block:b
           ~patch_back:(unpatch_site st ~target:b));
      match copy with
      | Some c ->
        c.live <- false;
        c.instrs <- [||];
        st.by_block.(b) <- None;
        line_release st b;
        st.deletions <- st.deletions + 1;
        incr retired
      | None -> ())
    st.by_block;
  st.copies <- [||];
  st.ncopies <- 0;
  st.copy_ptr <- st.copy_base;
  st.live_bytes <- 0;
  st.flushes <- st.flushes + 1;
  emit_room st;
  Sim.Events.Packed.push_flush st.ev ~at:(at st) ~copies:!retired

(* ------------------------------------------------------------------ *)
(* Copy creation (the real decompression path)                         *)

(* Decompress a block through its cache lines: every line no live
   copy covers is really decompressed and charged; already-resident
   lines are read back for free, like cache hits. Returns the block
   bytes (assembled from the decompressed lines, so the codec is
   exercised for real) and the cycles charged. *)
let decompress_block_lines st ls (b : Cfg.Graph.block) block_id =
  let buf = Bytes.create b.byte_size in
  let cycles = ref 0 in
  Array.iter
    (fun l ->
      let addr = ls.lmap.Residency.Linemap.addr.(l) in
      let len = ls.lmap.Residency.Linemap.len.(l) in
      let lbytes = st.codec.Compress.Codec.decompress ls.line_z.(l) in
      if Bytes.length lbytes <> len then
        raise (Runtime_bug "line decompressed size mismatch");
      if ls.line_refs.(l) = 0 then begin
        st.decompressions <- st.decompressions + 1;
        let charge =
          Sim.Cost.demand_dec_charge st.cost
            ~compressed_bytes:(Bytes.length ls.line_z.(l))
            ~uncompressed_bytes:len
        in
        cycles := !cycles + charge.Sim.Cost.cycles;
        Sim.Cost.Acc.charge st.acc Sim.Cost.Demand_dec charge
      end;
      let lo = max addr b.addr
      and hi = min (addr + len) (b.addr + b.byte_size) in
      Bytes.blit lbytes (lo - addr) buf (lo - b.addr) (hi - lo))
    ls.lmap.Residency.Linemap.of_block.(block_id);
  (buf, !cycles)

let make_copy st block_id =
  let b = Cfg.Graph.block st.graph block_id in
  (* Really decompress and decode; any codec bug surfaces here. *)
  let bytes, dec_cycles =
    match st.lines with
    | None ->
      let bytes = st.codec.Compress.Codec.decompress st.compressed.(block_id) in
      if Bytes.length bytes <> b.byte_size then
        raise (Runtime_bug "decompressed size mismatch");
      st.decompressions <- st.decompressions + 1;
      let charge =
        Sim.Cost.demand_dec_charge st.cost
          ~compressed_bytes:(Bytes.length st.compressed.(block_id))
          ~uncompressed_bytes:b.byte_size
      in
      Sim.Cost.Acc.charge st.acc Sim.Cost.Demand_dec charge;
      (bytes, charge.Sim.Cost.cycles)
    | Some ls ->
      let bytes, cycles = decompress_block_lines st ls b block_id in
      if Bytes.length bytes <> b.byte_size then
        raise (Runtime_bug "decompressed size mismatch");
      (bytes, cycles)
  in
  (match Eris.Encoding.decode_program bytes with
  | Ok decoded ->
    (* cross-check against the layout built at startup *)
    if Array.length decoded <> b.n_instrs then
      raise (Runtime_bug "decode after decompress: wrong instruction count")
  | Error msg -> raise (Runtime_bug ("decode after decompress: " ^ msg)));
  emit_room st;
  Sim.Events.Packed.push_demand st.ev ~at:(at st) ~block:block_id
    ~cycles:dec_cycles;
  let layout = st.layouts.(block_id) in
  let slots = Array.length layout.slots in
  (* guard word between copies keeps one-past-the-end unambiguous *)
  if st.copy_ptr + (4 * slots) + 4 > st.copy_limit then flush st;
  let base = st.copy_ptr in
  let instrs = Array.init slots (fun i -> materialize layout ~base i) in
  Array.iter
    (fun i ->
      match Eris.Types.validate i with
      | Ok () -> ()
      | Error msg -> raise (Runtime_bug ("relocation overflow: " ^ msg)))
    instrs;
  let c = { block = block_id; base; instrs; live = true } in
  st.copy_ptr <- st.copy_ptr + (4 * slots) + 4;
  if st.ncopies = Array.length st.copies then begin
    let bigger = Array.make (max 16 (2 * st.ncopies)) c in
    Array.blit st.copies 0 bigger 0 st.ncopies;
    st.copies <- bigger
  end;
  st.copies.(st.ncopies) <- c;
  st.ncopies <- st.ncopies + 1;
  st.by_block.(block_id) <- Some c;
  line_acquire st block_id;
  st.live_bytes <- st.live_bytes + (4 * slots);
  if st.live_bytes > st.peak_bytes then st.peak_bytes <- st.live_bytes;
  Residency.Area.on_materialize st.area ~block:block_id ~step:st.edges;
  Residency.Area.on_ready st.area ~block:block_id ~time:(at st);
  c

(* ------------------------------------------------------------------ *)
(* Edge bookkeeping (the k-edge algorithm, for real)                   *)

let block_of_home st home =
  match Cfg.Graph.block_at_addr st.graph home with
  | Some b -> b
  | None -> raise (Runtime_bug (Printf.sprintf "no block at home %d" home))

let rec delete_due st keep = function
  | [] -> ()
  | d :: tl ->
    (if d <> keep then
       match st.by_block.(d) with
       | Some c -> delete_copy st c
       | None -> ());
    delete_due st keep tl

let on_edge st ~target_block =
  st.edges <- st.edges + 1;
  delete_due st target_block (Residency.Area.due st.area ~step:st.edges);
  Residency.Area.on_execute st.area ~block:target_block ~step:st.edges
    ~time:(at st);
  emit_room st;
  Sim.Events.Packed.push_exec st.ev ~at:(at st) ~block:target_block

(* ------------------------------------------------------------------ *)
(* The trap handler (§5's memory-protection exception)                 *)

let handle_trap st pc =
  match home_of st pc with
  | None ->
    raise
      (Eris.Machine.Fault { pc; message = "wild pc outside image and copies" })
  | Some home ->
    st.traps <- st.traps + 1;
    Sim.Cost.Acc.charge st.acc Sim.Cost.Exception
      (Sim.Cost.exception_charge st.cost);
    let block = block_of_home st home in
    emit_room st;
    Sim.Events.Packed.push_exception st.ev ~at:(at st) ~block;
    let c =
      match st.by_block.(block) with
      | Some c -> c
      | None -> make_copy st block
    in
    let home_base = (Cfg.Graph.block st.graph block).addr in
    let off = home - home_base in
    let layout = st.layouts.(block) in
    (* first slot carrying this home offset (for a branch pair, the
       skip-branch; for a call sequence, the lui) *)
    let slot =
      let rec find i =
        if i >= Array.length layout.slots then
          raise
            (Runtime_bug
               (Printf.sprintf "no slot for home offset %d in block %d" off
                  block))
        else if layout.home_offs.(i) = off then i
        else find (i + 1)
      in
      find 0
    in
    let target = c.base + (4 * slot) in
    (match st.last_site with
    | Some site -> patch_site st site ~target_block:block ~target_addr:target
    | None -> ());
    Eris.Machine.set_pc st.machine target

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)

let stats_of st =
  {
    instructions = Eris.Machine.instr_count st.machine;
    traps = st.traps;
    decompressions = st.decompressions;
    patches = st.patches;
    unpatches = st.unpatches;
    deletions = st.deletions;
    flushes = st.flushes;
    edges = st.edges;
    peak_copy_bytes = st.peak_bytes;
    live_copy_bytes = st.live_bytes;
    compressed_image_bytes =
      (match st.lines with
      | None -> Array.fold_left (fun a b -> a + Bytes.length b) 0 st.compressed
      | Some ls ->
        Array.fold_left (fun a z -> a + Bytes.length z) 0 ls.line_z);
    original_image_bytes = image_size st;
    energy_nj = (Sim.Cost.Acc.total st.acc).Sim.Cost.energy_nj;
  }

let register_stats ?(labels = []) registry (s : stats) =
  let c name v =
    Sim.Metrics.set (Sim.Metrics.counter registry ~labels name) v
  in
  c "instructions" s.instructions;
  c "traps" s.traps;
  c "decompressions" s.decompressions;
  c "patches" s.patches;
  c "unpatches" s.unpatches;
  c "deletions" s.deletions;
  c "flushes" s.flushes;
  c "edges" s.edges;
  c "peak_copy_bytes" s.peak_copy_bytes;
  c "live_copy_bytes" s.live_copy_bytes;
  c "compressed_image_bytes" s.compressed_image_bytes;
  c "original_image_bytes" s.original_image_bytes;
  c "energy_nj" s.energy_nj

let run ?(fuel = 20_000_000) ?(k = 8) ?(retention = Residency.Policy.Kedge)
    ?codec ?cost ?profile ?sink ?registry ?line_size prog =
  let graph = Cfg.Build.of_program prog in
  let codec =
    match codec with
    | Some c -> c
    | None -> Compress.Registry.code_codec ~corpus:prog.Eris.Program.image
  in
  let cost =
    match cost with
    | Some c -> c
    | None ->
      let base =
        match profile with
        | Some p -> Sim.Cost.profile p
        | None -> Sim.Cost.default
      in
      Sim.Cost.with_rates
        ~dec_cycles_per_byte:codec.Compress.Codec.dec_cycles_per_byte
        ~comp_cycles_per_byte:codec.Compress.Codec.comp_cycles_per_byte base
  in
  let acc = Sim.Cost.Acc.create () in
  let snk = match sink with Some s -> s | None -> Sim.Events.null in
  let ev = Sim.Events.Packed.create () in
  (* boxed-event entry point for the area: same chunk, same order *)
  let emit e =
    if Sim.Events.Packed.is_full ev then begin
      snk.Sim.Events.emit_chunk ev;
      Sim.Events.Packed.clear ev
    end;
    Sim.Events.Packed.push_event ev e
  in
  let compressed =
    Array.map
      (fun (b : Cfg.Graph.block) ->
        codec.Compress.Codec.compress
          (Eris.Program.slice_bytes prog ~lo:b.addr ~hi:(b.addr + b.byte_size)))
      (Cfg.Graph.blocks graph)
  in
  let layouts =
    Array.map
      (fun (b : Cfg.Graph.block) ->
        let instrs =
          Array.sub prog.Eris.Program.instrs (b.addr / 4) b.n_instrs
        in
        layout_of_block b instrs)
      (Cfg.Graph.blocks graph)
  in
  let lines =
    match line_size with
    | None -> None
    | Some l ->
      let lmap = Residency.Linemap.build ~line_size:l graph in
      let line_z =
        Array.init lmap.Residency.Linemap.nlines (fun i ->
            codec.Compress.Codec.compress
              (Eris.Program.slice_bytes prog
                 ~lo:lmap.Residency.Linemap.addr.(i)
                 ~hi:
                   (lmap.Residency.Linemap.addr.(i)
                   + lmap.Residency.Linemap.len.(i))))
      in
      Some
        {
          lmap;
          line_z;
          line_refs = Array.make lmap.Residency.Linemap.nlines 0;
        }
  in
  let copy_base = ((Eris.Program.byte_size prog / 4096) + 1) * 4096 in
  let machine = Eris.Machine.create prog in
  let n = Cfg.Graph.num_blocks graph in
  let area =
    Residency.Area.create
      ~policy:
        (Residency.Policy.instantiate retention
           {
             Residency.Policy.blocks = n;
             k;
             k_of = None;
             graph = Some graph;
             budget = None;
             size_of =
               Some (fun b -> (Cfg.Graph.block graph b).Cfg.Graph.byte_size);
             totals = Some (fun () -> Sim.Cost.Acc.dimension_totals acc);
           })
      ~blocks:n ~emit
      ~now:(fun () -> Eris.Machine.instr_count machine)
      ~site_key:(fun ((c : copy), idx) -> c.base + (4 * idx))
      ()
  in
  let st =
    {
      prog;
      graph;
      machine;
      codec;
      cost;
      acc;
      snk;
      ev;
      compressed;
      lines;
      layouts;
      area;
      by_block = Array.make n None;
      copies = [||];
      ncopies = 0;
      copy_base;
      (* conditional branches are gone from copies (replaced by pairs),
         so only jal reach matters: +-8 MiB covers this window *)
      copy_limit = copy_base + (6 * 1024 * 1024);
      copy_ptr = copy_base;
      live_bytes = 0;
      peak_bytes = 0;
      last_site = None;
      traps = 0;
      decompressions = 0;
      patches = 0;
      unpatches = 0;
      deletions = 0;
      flushes = 0;
      edges = 0;
    }
  in
  let rec loop budget =
    if Eris.Machine.halted st.machine then Ok (st.machine, stats_of st)
    else if budget <= 0 then Error (Out_of_fuel (stats_of st))
    else begin
      let pc = Eris.Machine.pc st.machine in
      match exec_slot st pc with
      | Some (c, idx) ->
        Eris.Machine.execute_instruction st.machine c.instrs.(idx);
        let new_pc = Eris.Machine.pc st.machine in
        (if (not (Eris.Machine.halted st.machine)) && new_pc <> pc + 4 then
           let is_skip =
             match st.layouts.(c.block).slots.(idx) with
             | Skip _ -> true
             | Plain _ | Jump _ -> false
           in
           if is_skip then st.last_site <- None
           else begin
             st.last_site <- Some (c, idx);
             match exec_slot st new_pc with
             | Some (tc, _) -> on_edge st ~target_block:tc.block
             | None -> (
               match home_of st new_pc with
               | Some home -> on_edge st ~target_block:(block_of_home st home)
               | None ->
                 raise
                   (Eris.Machine.Fault
                      { pc = new_pc; message = "transfer to unknown address" }))
           end
         else if new_pc = pc + 4 then st.last_site <- None);
        loop (budget - 1)
      | None ->
        handle_trap st pc;
        st.last_site <- None;
        loop budget
    end
  in
  Residency.Area.on_execute st.area ~block:(Cfg.Graph.entry graph) ~step:0
    ~time:0;
  emit_room st;
  Sim.Events.Packed.push_exec st.ev ~at:0 ~block:(Cfg.Graph.entry graph);
  let finish result =
    emit_drain st;
    (match registry with
    | Some r ->
      let s =
        match result with
        | Ok (_, s) -> s
        | Error (Out_of_fuel s) -> s
        | Error (Machine_fault { stats; _ }) -> stats
      in
      register_stats r s
    | None -> ());
    result
  in
  match loop fuel with
  | result -> finish result
  | exception Eris.Machine.Fault { pc; message } ->
    finish (Error (Machine_fault { pc; message; stats = stats_of st }))
  | exception Runtime_bug message ->
    finish
      (Error
         (Machine_fault
            { pc = Eris.Machine.pc st.machine; message; stats = stats_of st }))

let run_source ?fuel ?k ?retention ?codec ?cost ?profile ?sink ?registry
    ?line_size source =
  run ?fuel ?k ?retention ?codec ?cost ?profile ?sink ?registry ?line_size
    (Eris.Asm.assemble_exn source)
