(** Programmatic construction of ERIS-32 programs: an imperative
    emitter with symbolic labels, resolved on {!to_program}. Used where
    generating assembly text would be roundabout — program generators
    in tests, JIT-style experiment drivers. *)

type t

val create : unit -> t

val fresh_label : t -> string
(** A new unique label (not yet placed). *)

val place : t -> string -> unit
(** Binds a label to the current position.
    @raise Invalid_argument if already placed. *)

val emit : t -> Types.instruction -> unit
(** Appends a literal instruction (no label resolution). *)

val emit_all : t -> Types.instruction list -> unit
(** [emit] for each instruction in order. *)

val comment : t -> string -> unit
(** Attaches a note to the next emitted instruction's index. Comments
    are pure annotation: they occupy no instruction slot and never
    reach {!to_program} — they exist so generated programs can be
    diffed and listed with their structure visible. *)

val comments : t -> (int * string) list
(** All comments in emission order, as (instruction index, text). *)

val branch_to : t -> Types.cond -> Types.reg -> Types.reg -> string -> unit
(** Conditional branch to a label. *)

val jump_to : t -> string -> unit
(** [jal r0] to a label. *)

val call_to : t -> string -> unit
(** [jal ra] to a label. *)

val halt : t -> unit

val position : t -> int
(** Byte address of the next emitted instruction. *)

val to_program : t -> Program.t
(** Resolves all label references.
    @raise Invalid_argument on unplaced labels or out-of-range
    offsets. *)
