type item =
  | Literal of Types.instruction
  | Branch_to of Types.cond * Types.reg * Types.reg * string
  | Jump_to of Types.reg * string

type t = {
  mutable rev_items : item list;
  mutable count : int;
  labels : (string, int) Hashtbl.t;  (* label -> instruction index *)
  mutable next_label : int;
  mutable rev_comments : (int * string) list;  (* instruction index, text *)
}

let create () =
  {
    rev_items = [];
    count = 0;
    labels = Hashtbl.create 16;
    next_label = 0;
    rev_comments = [];
  }

let fresh_label t =
  let l = Printf.sprintf "L%d" t.next_label in
  t.next_label <- t.next_label + 1;
  l

let place t label =
  if Hashtbl.mem t.labels label then
    invalid_arg (Printf.sprintf "Eris.Builder.place: label %S placed twice" label);
  Hashtbl.replace t.labels label t.count

let push t item =
  t.rev_items <- item :: t.rev_items;
  t.count <- t.count + 1

let emit t i = push t (Literal i)
let emit_all t is = List.iter (emit t) is
let comment t text = t.rev_comments <- (t.count, text) :: t.rev_comments
let comments t = List.rev t.rev_comments
let branch_to t c rs1 rs2 label = push t (Branch_to (c, rs1, rs2, label))
let jump_to t label = push t (Jump_to (Types.r0, label))
let call_to t label = push t (Jump_to (Types.ra, label))
let halt t = emit t Types.Halt
let position t = 4 * t.count

let to_program t =
  let resolve label =
    match Hashtbl.find_opt t.labels label with
    | Some idx -> idx
    | None ->
      invalid_arg (Printf.sprintf "Eris.Builder.to_program: unplaced label %S" label)
  in
  let items = Array.of_list (List.rev t.rev_items) in
  let check i =
    match Types.validate i with
    | Ok () -> i
    | Error msg -> invalid_arg ("Eris.Builder.to_program: " ^ msg)
  in
  let instrs =
    Array.mapi
      (fun idx item ->
        match item with
        | Literal i -> check i
        | Branch_to (c, rs1, rs2, label) ->
          check (Types.Branch (c, rs1, rs2, resolve label - idx - 1))
        | Jump_to (rd, label) ->
          check (Types.Jal (rd, resolve label - idx - 1)))
      items
  in
  let symbols =
    Hashtbl.fold (fun name idx acc -> (name, 4 * idx) :: acc) t.labels []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  Program.of_instructions ~symbols instrs
