(** Versioned binary serialization of basic-block traces — the compact
    sibling of {!Io}'s text format, built for traces that are too big
    to keep in text (10⁸–10⁹ events).

    Grammar (all integers little-endian):

    {v
    file   := "ccbt" version:u8 flags:u8 count:i64 frame* end
    frame  := n:varint(>0) raw:varint stored:varint
              payload[stored] check:varint
    end    := varint 0
    v}

    - [version] is 1. [flags] bit 0 set means every frame's payload is
      LZSS-compressed (see {!Compress.Lzss}).
    - [count] is the total number of ids, or -1 when the writer could
      not backpatch it (unseekable output).
    - A frame's payload is [n] block ids, each encoded as the
      LEB128-style varint of the zigzag of its delta from the previous
      id (the first id ever is a delta from 0); [raw] is the payload
      size before frame compression, [stored] after ([raw = stored]
      without LZSS). [check] is a 32-bit mix of the frame's ids, so
      corruption that still parses is caught deterministically.

    Every reader entry point returns [Error] on malformed input —
    truncation, bit flips, absurd length claims — and never raises,
    loops or allocates unboundedly: each length field is capped and
    cross-checked before the corresponding buffer exists. *)

val magic : string
(** ["ccbt"], the 4-byte file prefix. *)

val is_binary : string -> bool
(** Does this buffer (or its first 4 bytes) start with {!magic}? *)

val encode : ?lzss:bool -> ?frame:int -> int array -> string
(** Whole-array encode. [frame] is the ids-per-frame granularity
    (default 65536). @raise Invalid_argument if [frame <= 0]. *)

val decode : string -> (int array, string) result
(** Whole-buffer decode; exact inverse of {!encode}. *)

(** {1 Streaming} *)

module Writer : sig
  type t

  val create : ?lzss:bool -> ?frame:int -> out_channel -> t
  (** Writes the header immediately. The caller keeps ownership of the
      channel. @raise Invalid_argument if [frame <= 0]. *)

  val push : t -> int -> unit
  (** Appends one id, flushing a frame whenever one fills. *)

  val close : t -> unit
  (** Flushes the pending frame, writes the end marker and backpatches
      [count] (left as -1 if the channel cannot seek). Does not close
      the channel. Idempotent. *)
end

module Reader : sig
  type t

  val create : in_channel -> (t, string) result
  (** Reads and validates the header. The caller keeps ownership of
      the channel. *)

  val lzss : t -> bool

  val count : t -> int option
  (** Header id count; [None] when the writer left it unknown. *)

  val next : t -> (int array option, string) result
  (** The next frame's ids ([Ok None] at the end marker, after which
      the header count — when known — has been cross-checked). One
      frame is the most that is ever in memory at once. *)
end

val write_file : ?lzss:bool -> ?frame:int -> string -> int array -> unit
val read_file : string -> (int array, string) result

val fold_file :
  string -> init:'a -> f:('a -> int array -> 'a) -> ('a, string) result
(** Streams a file chunk-by-chunk through [f] without ever holding
    more than one frame of ids. *)

(** {1 Inspection} *)

type info = {
  version : int;
  lzss : bool;
  header_count : int option;  (** [count] field; [None] if unknown *)
  ids : int;  (** ids actually present across frames *)
  frames : int;
  stored_bytes : int;  (** payload bytes as stored *)
  raw_bytes : int;  (** payload bytes before frame compression *)
}

val info : string -> (info, string) result
(** Structural scan (validates framing and payloads like {!decode},
    without materializing the ids). *)
