let header = "ccomp-trace 1"

let to_string trace =
  let buf = Buffer.create ((Array.length trace * 4) + 16) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Array.iter
    (fun b ->
      Buffer.add_string buf (string_of_int b);
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

(* Tolerate Windows-style line endings: splitting on '\n' leaves a
   trailing '\r' on every line of a CRLF file, including the header. *)
let strip_cr l =
  let n = String.length l in
  if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l

let of_string s =
  match List.map strip_cr (String.split_on_char '\n' s) with
  | h :: rest when h = header ->
    let ids = List.filter (fun l -> String.trim l <> "") rest in
    let rec parse acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | l :: tl -> (
        match int_of_string_opt (String.trim l) with
        | Some v -> parse (v :: acc) tl
        | None -> Error (Printf.sprintf "bad trace line %S" l))
    in
    parse [] ids
  | h :: _ -> Error (Printf.sprintf "bad trace header %S" h)
  | [] -> Error "empty trace file"

let save path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string trace))

let load path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
  | exception Sys_error msg -> Error msg
