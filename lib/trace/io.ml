let header = "ccomp-trace 1"

let to_string trace =
  let buf = Buffer.create ((Array.length trace * 4) + 16) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Array.iter
    (fun b ->
      Buffer.add_string buf (string_of_int b);
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

(* Tolerate Windows-style line endings: splitting on '\n' leaves a
   trailing '\r' on every line of a CRLF file, including the header. *)
let strip_cr l =
  let n = String.length l in
  if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l

let is_blank l = String.trim l = ""

(* Strictly a decimal integer: optional sign, then digits only. The
   stdlib's [int_of_string] also accepts 0x/0o/0b radix prefixes and
   embedded underscores — none of which belong in a trace file, and
   all of which used to slip through (or worse, parse to surprising
   values) when garbage followed a valid prefix. *)
let parse_id l =
  let l = String.trim l in
  let n = String.length l in
  let start = if n > 0 && (l.[0] = '-' || l.[0] = '+') then 1 else 0 in
  if n = start then None
  else begin
    let ok = ref true in
    for i = start to n - 1 do
      match l.[i] with '0' .. '9' -> () | _ -> ok := false
    done;
    if !ok then int_of_string_opt l else None
  end

let of_string s =
  match List.map strip_cr (String.split_on_char '\n' s) with
  | h :: rest when h = header ->
    let rec parse acc lineno = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | l :: tl when is_blank l -> parse acc (lineno + 1) tl
      | l :: tl -> (
        match parse_id l with
        | Some v -> parse (v :: acc) (lineno + 1) tl
        | None ->
          Error (Printf.sprintf "trace line %d: %S is not a block id" lineno l))
    in
    parse [] 2 rest
  | h :: _ -> Error (Printf.sprintf "bad trace header %S" h)
  | [] -> Error "empty trace file"

(* [save]/[load] speak both formats. Saving picks by explicit
   [format], falling back to the file extension (.bin/.ctb = binary);
   loading sniffs the magic bytes, so either format round-trips
   through the same call. *)

let binary_suffix path =
  Filename.check_suffix path ".bin" || Filename.check_suffix path ".ctb"

let save ?(format = `Auto) path trace =
  let binary =
    match format with
    | `Binary -> true
    | `Text -> false
    | `Auto -> binary_suffix path
  in
  if binary then Binary.write_file path trace
  else begin
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string trace))
  end

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let data = In_channel.input_all ic in
        if Binary.is_binary data then Binary.decode data else of_string data)
