(* See the .mli: five ints per event through one Binary id stream. *)

module Writer = struct
  type t = Binary.Writer.t

  let create ?(lzss = true) ?frame oc = Binary.Writer.create ~lzss ?frame oc

  let push w ~kind ~at ~a ~b ~c =
    Binary.Writer.push w kind;
    Binary.Writer.push w at;
    Binary.Writer.push w a;
    Binary.Writer.push w b;
    Binary.Writer.push w c

  let close = Binary.Writer.close
end

(* Events can straddle frame boundaries (frames hold id counts chosen
   by the writer, not multiples of five), so carry a <5-int remainder
   from chunk to chunk. *)
let fold_file path ~init ~f =
  let rem = Array.make 5 0 in
  let nrem = ref 0 in
  let step acc ids =
    let acc = ref acc in
    let n = Array.length ids in
    let i = ref 0 in
    while !i < n do
      if !nrem > 0 || n - !i < 5 then begin
        (* fill the remainder buffer one int at a time *)
        rem.(!nrem) <- ids.(!i);
        incr nrem;
        incr i;
        if !nrem = 5 then begin
          acc :=
            f !acc ~kind:rem.(0) ~at:rem.(1) ~a:rem.(2) ~b:rem.(3) ~c:rem.(4);
          nrem := 0
        end
      end
      else begin
        acc :=
          f !acc ~kind:ids.(!i) ~at:ids.(!i + 1) ~a:ids.(!i + 2)
            ~b:ids.(!i + 3) ~c:ids.(!i + 4);
        i := !i + 5
      end
    done;
    !acc
  in
  match Binary.fold_file path ~init ~f:step with
  | Error e -> Error e
  | Ok acc ->
    if !nrem <> 0 then
      Error
        (Printf.sprintf "event log ends mid-event (%d trailing ints)" !nrem)
    else Ok acc
