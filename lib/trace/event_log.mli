(** Binary event logs: the {!Binary} trace container reused as a
    compact sink format for simulation event streams (the [.bin]
    alternative to JSONL on [--trace-out]).

    An event is five ints — [kind, at, a, b, c], using the packed
    event field maps of [Sim.Events.Packed] — appended in order to one
    {!Binary} id stream, so a log of [n] events is a binary trace of
    [5n] ids and inherits the framing, varint/delta coding, optional
    LZSS and corruption detection for free. This module only enforces
    the five-int stride; interpreting the fields is the caller's
    business (keeping this layer free of the event vocabulary). *)

module Writer : sig
  type t

  val create : ?lzss:bool -> ?frame:int -> out_channel -> t
  (** LZSS framing defaults to on: event streams are extremely
      repetitive. [frame] (in ids, not events) is passed through to
      {!Binary.Writer.create}. The caller keeps ownership of the
      channel. *)

  val push : t -> kind:int -> at:int -> a:int -> b:int -> c:int -> unit
  val close : t -> unit
end

val fold_file :
  string ->
  init:'a ->
  f:('a -> kind:int -> at:int -> a:int -> b:int -> c:int -> 'a) ->
  ('a, string) result
(** Streams a log back one event at a time; [Error] if the file is not
    a well-formed binary stream of whole five-int events. *)
