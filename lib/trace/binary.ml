(* Binary trace format v1. See the .mli for the grammar.

   Ids are delta-coded (hot traces revisit neighbouring blocks, so
   deltas are small), zigzag-mapped onto unsigned varints and written
   through Bitio's buffered writer in whole bytes; a frame of them is
   optionally LZSS-compressed as one unit. Every frame carries a
   checksum of its ids: a flipped bit that still parses as valid
   varints would otherwise decode to a silently different trace. *)

let magic = "ccbt"
let version = 1
let default_frame = 65536

(* caps that bound allocation before any buffer is created *)
let max_frame_ids = 1 lsl 24
let max_varint_bytes = 9 (* 9 * 7 = 63 bits: a full OCaml int *)

let is_binary s =
  String.length s >= 4 && String.sub s 0 4 = magic

let zigzag d = (d lsl 1) lxor (d asr 62)
let unzigzag z = (z lsr 1) lxor (- (z land 1))

(* 32-bit mixing checksum over a frame's ids (order-sensitive) *)
let mix h x =
  let h = h lxor ((x land 0xFFFFFFFF) lxor (x lsr 31)) in
  let h = (h * 0x85EBCA6B) land 0xFFFFFFFF in
  h lxor (h lsr 13)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let add_varint buf v =
  let w = ref v in
  let continue = ref true in
  while !continue do
    let b = !w land 0x7F in
    w := !w lsr 7;
    if !w = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* One frame's payload: ids.(lo .. lo+n-1) delta-coded from [prev]. *)
let encode_payload ids lo n prev =
  let w = Compress.Bitio.Writer.create () in
  let p = ref prev in
  for i = lo to lo + n - 1 do
    let z = ref (zigzag (ids.(i) - !p)) in
    p := ids.(i);
    let continue = ref true in
    while !continue do
      let b = !z land 0x7F in
      z := !z lsr 7;
      if !z = 0 then begin
        Compress.Bitio.Writer.add_bits w ~value:b ~bits:8;
        continue := false
      end
      else Compress.Bitio.Writer.add_bits w ~value:(b lor 0x80) ~bits:8
    done
  done;
  Compress.Bitio.Writer.contents w

let frame_check ids lo n =
  let h = ref 0x811C9DC5 in
  for i = lo to lo + n - 1 do
    h := mix !h ids.(i)
  done;
  !h

let add_frame buf ~lzss ids lo n prev =
  let raw = encode_payload ids lo n prev in
  let stored =
    if lzss then Compress.Lzss.codec.Compress.Codec.compress raw else raw
  in
  add_varint buf n;
  add_varint buf (Bytes.length raw);
  add_varint buf (Bytes.length stored);
  Buffer.add_bytes buf stored;
  add_varint buf (frame_check ids lo n)

let add_header buf ~lzss ~count =
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (if lzss then '\001' else '\000');
  let c = Int64.of_int count in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical c (8 * i)) land 0xFF))
  done

let encode ?(lzss = false) ?(frame = default_frame) ids =
  if frame <= 0 then invalid_arg "Trace.Binary.encode";
  let n = Array.length ids in
  let buf = Buffer.create (16 + (2 * n) + 16) in
  add_header buf ~lzss ~count:n;
  let prev = ref 0 in
  let lo = ref 0 in
  while !lo < n do
    let m = min frame (n - !lo) in
    add_frame buf ~lzss ids !lo m !prev;
    prev := ids.(!lo + m - 1);
    lo := !lo + m
  done;
  add_varint buf 0;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

(* One byte source abstracts the string and channel readers: [byte]
   yields -1 at end of input, [blob n] reads exactly [n] bytes. *)
type src = { byte : unit -> int; blob : int -> bytes option }

let src_of_string s =
  let pos = ref 0 in
  let n = String.length s in
  {
    byte =
      (fun () ->
        if !pos >= n then -1
        else begin
          let c = Char.code (String.unsafe_get s !pos) in
          incr pos;
          c
        end);
    blob =
      (fun k ->
        if k < 0 || !pos + k > n then None
        else begin
          let b = Bytes.of_string (String.sub s !pos k) in
          pos := !pos + k;
          Some b
        end);
  }

let src_of_channel ic =
  {
    byte = (fun () -> match input_byte ic with b -> b | exception End_of_file -> -1);
    blob =
      (fun k ->
        if k < 0 then None
        else
          let b = Bytes.create k in
          match really_input ic b 0 k with
          | () -> Some b
          | exception End_of_file -> None);
  }

let read_varint src =
  let z = ref 0 and shift = ref 0 and continue = ref true in
  let err = ref None in
  while !continue do
    if !shift >= 7 * max_varint_bytes then begin
      err := Some "varint too long";
      continue := false
    end
    else begin
      match src.byte () with
      | -1 ->
        err := Some "truncated varint";
        continue := false
      | b ->
        z := !z lor ((b land 0x7F) lsl !shift);
        shift := !shift + 7;
        if b land 0x80 = 0 then continue := false
    end
  done;
  match !err with Some e -> Error e | None -> Ok !z

let read_header src =
  let m = Bytes.create 4 in
  let rec fill i =
    if i = 4 then true
    else
      match src.byte () with
      | -1 -> false
      | b ->
        Bytes.set m i (Char.chr b);
        fill (i + 1)
  in
  if not (fill 0) then Error "not a binary trace (truncated magic)"
  else if Bytes.to_string m <> magic then Error "not a binary trace (bad magic)"
  else
    match src.byte () with
    | -1 -> Error "truncated header"
    | v when v <> version ->
      Error (Printf.sprintf "unsupported binary trace version %d" v)
    | _ -> (
      match src.byte () with
      | -1 -> Error "truncated header"
      | flags when flags land (lnot 1) <> 0 ->
        Error (Printf.sprintf "unknown header flags 0x%02x" flags)
      | flags -> (
        let lzss = flags land 1 = 1 in
        let rec count i acc =
          if i = 8 then Some acc
          else
            match src.byte () with
            | -1 -> None
            | b -> count (i + 1) (acc lor (b lsl (8 * i)))
        in
        match count 0 0 with
        | None -> Error "truncated header"
        | Some raw64 ->
          (* stored as i64; OCaml ints are 63-bit, so map the sign
             bit down and treat any negative as "unknown" *)
          let c = (raw64 lsl 1) asr 1 in
          if c < 0 then Ok (lzss, None) else Ok (lzss, Some c)))

(* Decode a frame payload into [out] (length n), returning the last id. *)
let decode_payload payload n prev out =
  let r = Compress.Bitio.Reader.create payload in
  let p = ref prev in
  let err = ref None in
  (try
     for i = 0 to n - 1 do
       let z = ref 0 and shift = ref 0 and continue = ref true in
       while !continue do
         if !shift >= 7 * max_varint_bytes then begin
           err := Some "varint too long in frame payload";
           raise Exit
         end;
         let b = Compress.Bitio.Reader.read_bits r 8 in
         z := !z lor ((b land 0x7F) lsl !shift);
         shift := !shift + 7;
         if b land 0x80 = 0 then continue := false
       done;
       p := !p + unzigzag !z;
       Array.unsafe_set out i !p
     done;
     if Compress.Bitio.Reader.bits_left r <> 0 then
       err := Some "trailing bytes in frame payload"
   with
  | Exit -> ()
  | Compress.Codec.Corrupt _ -> err := Some "truncated frame payload");
  match !err with Some e -> Error e | None -> Ok !p

(* Parse the next frame. [Ok None] = end marker reached. *)
let read_frame src ~lzss ~prev =
  match read_varint src with
  | Error e -> Error e
  | Ok 0 -> Ok None
  | Ok n when n > max_frame_ids ->
    Error (Printf.sprintf "frame claims %d ids (cap %d)" n max_frame_ids)
  | Ok n -> (
    match read_varint src with
    | Error e -> Error e
    | Ok raw_len when raw_len < n || raw_len > max_varint_bytes * n ->
      Error (Printf.sprintf "frame raw length %d inconsistent with %d ids"
               raw_len n)
    | Ok raw_len -> (
      match read_varint src with
      | Error e -> Error e
      | Ok stored_len when stored_len > raw_len + (raw_len lsr 3) + 16 ->
        Error (Printf.sprintf "frame stored length %d inconsistent with raw %d"
                 stored_len raw_len)
      | Ok stored_len -> (
        match src.blob stored_len with
        | None -> Error "truncated frame payload"
        | Some stored -> (
          let raw =
            if not lzss then Ok stored
            else
              match Compress.Lzss.codec.Compress.Codec.decompress stored with
              | raw -> Ok raw
              | exception Compress.Codec.Corrupt m ->
                Error ("corrupt LZSS frame: " ^ m)
          in
          match raw with
          | Error e -> Error e
          | Ok raw when Bytes.length raw <> raw_len ->
            Error
              (Printf.sprintf "frame decompressed to %d bytes, header says %d"
                 (Bytes.length raw) raw_len)
          | Ok raw -> (
            let out = Array.make n 0 in
            match decode_payload raw n prev out with
            | Error e -> Error e
            | Ok last -> (
              match read_varint src with
              | Error e -> Error e
              | Ok check when check <> frame_check out 0 n ->
                Error "frame checksum mismatch"
              | Ok _ -> Ok (Some (out, last, raw_len, stored_len))))))))

let decode s =
  let src = src_of_string s in
  match read_header src with
  | Error e -> Error e
  | Ok (lzss, count) ->
    let rec frames acc total prev =
      match read_frame src ~lzss ~prev with
      | Error e -> Error e
      | Ok (Some (ids, last, _, _)) ->
        frames (ids :: acc) (total + Array.length ids) last
      | Ok None -> (
        match count with
        | Some c when c <> total ->
          Error
            (Printf.sprintf "header promises %d ids, stream holds %d" c total)
        | _ ->
          if src.byte () <> -1 then Error "trailing garbage after end marker"
          else begin
            let out = Array.make total 0 in
            let pos = ref total in
            List.iter
              (fun ids ->
                pos := !pos - Array.length ids;
                Array.blit ids 0 out !pos (Array.length ids))
              acc;
            Ok out
          end)
    in
    frames [] 0 0

(* ------------------------------------------------------------------ *)
(* Streaming                                                           *)

module Writer = struct
  type t = {
    oc : out_channel;
    lzss : bool;
    buf : int array;
    mutable len : int;
    mutable prev : int;
    mutable total : int;
    mutable closed : bool;
  }

  let create ?(lzss = false) ?(frame = default_frame) oc =
    if frame <= 0 then invalid_arg "Trace.Binary.Writer.create";
    let hdr = Buffer.create 16 in
    add_header hdr ~lzss ~count:(-1);
    Buffer.output_buffer oc hdr;
    {
      oc;
      lzss;
      buf = Array.make frame 0;
      len = 0;
      prev = 0;
      total = 0;
      closed = false;
    }

  let flush_frame t =
    if t.len > 0 then begin
      let buf = Buffer.create (2 * t.len) in
      add_frame buf ~lzss:t.lzss t.buf 0 t.len t.prev;
      Buffer.output_buffer t.oc buf;
      t.prev <- t.buf.(t.len - 1);
      t.total <- t.total + t.len;
      t.len <- 0
    end

  let push t id =
    if t.closed then invalid_arg "Trace.Binary.Writer.push: closed";
    t.buf.(t.len) <- id;
    t.len <- t.len + 1;
    if t.len = Array.length t.buf then flush_frame t

  let close t =
    if not t.closed then begin
      t.closed <- true;
      flush_frame t;
      output_char t.oc '\000' (* the end marker: varint 0 *);
      (* backpatch the count; leave -1 if the channel cannot seek *)
      (try
         let endpos = pos_out t.oc in
         seek_out t.oc 6;
         let c = Int64.of_int t.total in
         for i = 0 to 7 do
           output_char t.oc
             (Char.chr
                (Int64.to_int (Int64.shift_right_logical c (8 * i)) land 0xFF))
         done;
         seek_out t.oc endpos
       with Sys_error _ -> ());
      flush t.oc
    end
end

module Reader = struct
  type t = {
    src : src;
    lzss : bool;
    count : int option;
    mutable prev : int;
    mutable seen : int;
    mutable ended : bool;
  }

  let create ic =
    let src = src_of_channel ic in
    match read_header src with
    | Error e -> Error e
    | Ok (lzss, count) ->
      Ok { src; lzss; count; prev = 0; seen = 0; ended = false }

  let lzss t = t.lzss
  let count t = t.count

  let next t =
    if t.ended then Ok None
    else
      match read_frame t.src ~lzss:t.lzss ~prev:t.prev with
      | Error e -> Error e
      | Ok (Some (ids, last, _, _)) ->
        t.prev <- last;
        t.seen <- t.seen + Array.length ids;
        Ok (Some ids)
      | Ok None -> (
        t.ended <- true;
        match t.count with
        | Some c when c <> t.seen ->
          Error
            (Printf.sprintf "header promises %d ids, stream holds %d" c t.seen)
        | _ -> Ok None)
end

let write_file ?lzss ?frame path ids =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let w = Writer.create ?lzss ?frame oc in
      Array.iter (fun id -> Writer.push w id) ids;
      Writer.close w)

let fold_file path ~init ~f =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match Reader.create ic with
        | Error e -> Error e
        | Ok r ->
          let rec go acc =
            match Reader.next r with
            | Error e -> Error e
            | Ok None -> Ok acc
            | Ok (Some ids) -> go (f acc ids)
          in
          go init)

let read_file path =
  match
    fold_file path ~init:[] ~f:(fun acc ids -> (ids, Array.length ids) :: acc)
  with
  | Error e -> Error e
  | Ok chunks ->
    let total = List.fold_left (fun a (_, n) -> a + n) 0 chunks in
    let out = Array.make total 0 in
    let pos = ref total in
    List.iter
      (fun (ids, n) ->
        pos := !pos - n;
        Array.blit ids 0 out !pos n)
      chunks;
    Ok out

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)

type info = {
  version : int;
  lzss : bool;
  header_count : int option;
  ids : int;
  frames : int;
  stored_bytes : int;
  raw_bytes : int;
}

let info s =
  let src = src_of_string s in
  match read_header src with
  | Error e -> Error e
  | Ok (lzss, header_count) ->
    (* structural walk: same frame validation as [decode], but only
       per-frame buffers are ever live *)
    let rec go ids frames stored raw prev =
      match read_frame src ~lzss ~prev with
      | Error e -> Error e
      | Ok (Some (frame_ids, last, raw_len, stored_len)) ->
        let n = Array.length frame_ids in
        go (ids + n) (frames + 1) (stored + stored_len) (raw + raw_len) last
      | Ok None -> (
        match header_count with
        | Some c when c <> ids ->
          Error (Printf.sprintf "header promises %d ids, stream holds %d" c ids)
        | _ ->
          if src.byte () <> -1 then Error "trailing garbage after end marker"
          else
            Ok
              { version; lzss; header_count; ids; frames; stored_bytes = stored;
                raw_bytes = raw })
    in
    go 0 0 0 0 0
