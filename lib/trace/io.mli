(** Serialization of basic-block traces, so profiling runs can be
    captured once and replayed across experiments. Two formats share
    the entry points: the line-oriented text one below, and
    {!Binary}'s compact framed one. *)

val to_string : int array -> string
(** Text format: a ["ccomp-trace 1"] header line, one decimal block id
    per line. *)

val of_string : string -> (int array, string) result
(** Parses the text format strictly: blank lines (and CRLF endings)
    are tolerated, but every other line must be exactly one decimal
    integer — errors carry the line number and the offending
    content. *)

val save : ?format:[ `Auto | `Text | `Binary ] -> string -> int array -> unit
(** [`Auto] (the default) picks binary for [.bin]/[.ctb] paths, text
    otherwise. *)

val load : string -> (int array, string) result
(** Sniffs the format from the file's magic bytes; both formats load
    through this one call. *)
