(* Block ids are small dense ints, so last-use times live in a
   growable array indexed by block — touch is two stores, no hashing.
   Victim selection scans the array; populations are small (hundreds)
   and eviction only happens in budgeted runs, so the scan is off the
   common path. *)

let absent = min_int

type t = {
  mutable time_of : int array;  (* [absent] = not tracked *)
  mutable tracked : int;
}

let create () = { time_of = Array.make 64 absent; tracked = 0 }

let ensure t b =
  if b < 0 then invalid_arg "Memsim.Lru: negative block id";
  let n = Array.length t.time_of in
  if b >= n then begin
    let cap = ref (2 * n) in
    while b >= !cap do
      cap := 2 * !cap
    done;
    let a = Array.make !cap absent in
    Array.blit t.time_of 0 a 0 n;
    t.time_of <- a
  end

let touch t b ~time =
  ensure t b;
  if t.time_of.(b) = absent then t.tracked <- t.tracked + 1;
  t.time_of.(b) <- time

let remove t b =
  if b >= 0 && b < Array.length t.time_of && t.time_of.(b) <> absent then begin
    t.time_of.(b) <- absent;
    t.tracked <- t.tracked - 1
  end

let mem t b = b >= 0 && b < Array.length t.time_of && t.time_of.(b) <> absent
let cardinal t = t.tracked

let victim t ?(exclude = fun _ -> false) () =
  let best = ref (-1) and best_time = ref 0 in
  let a = t.time_of in
  for b = 0 to Array.length a - 1 do
    let time = a.(b) in
    (* Strict [<] on an ascending scan makes ties resolve to the
       smallest block id, matching the documented order. *)
    if
      time <> absent
      && (!best < 0 || time < !best_time)
      && not (exclude b)
    then begin
      best := b;
      best_time := time
    end
  done;
  if !best < 0 then None else Some !best

let to_list t =
  let acc = ref [] in
  let a = t.time_of in
  for b = Array.length a - 1 downto 0 do
    if a.(b) <> absent then acc := (b, a.(b)) :: !acc
  done;
  List.sort
    (fun (b1, t1) (b2, t2) -> if t1 <> t2 then compare t1 t2 else compare b1 b2)
    !acc
