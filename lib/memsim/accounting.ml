type t = {
  mutable now : int;
  mutable level : int;
  mutable peak : int;
  mutable integral : int;
}

let create () = { now = 0; level = 0; peak = 0; integral = 0 }

let advance t ~time =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Memsim.Accounting: time went backwards (%d < %d)" time
         t.now);
  t.integral <- t.integral + (t.level * (time - t.now));
  t.now <- time

let set_level t ~time ~level =
  if level < 0 then invalid_arg "Memsim.Accounting.set_level: negative level";
  advance t ~time;
  t.level <- level;
  if level > t.peak then t.peak <- level

let add t ~time ~delta = set_level t ~time ~level:(t.level + delta)
let level t = t.level
let peak t = t.peak

let integral t ~until =
  advance t ~time:until;
  t.integral

let average t ~until =
  let i = integral t ~until in
  if until = 0 then 0.0 else float_of_int i /. float_of_int until

let register ?(labels = []) ?(prefix = "occupancy") registry t ~until =
  let set name v =
    Sim.Metrics.set (Sim.Metrics.counter registry ~labels (prefix ^ name)) v
  in
  set "_level_bytes" t.level;
  set "_peak_bytes" t.peak;
  set "_avg_bytes" (int_of_float (average t ~until))
