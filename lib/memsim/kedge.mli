(** Bookkeeping for the k-edge compression algorithm (paper, §3 and
    §5): every tracked block has a counter that resets to zero when the
    block executes and increases by one at each subsequent edge
    traversal; when it reaches [k] the block's decompressed copy is
    due for deletion.

    Steps are global edge-traversal counts (position in the trace).
    The implementation keeps, per block, the step of its last reset and
    a min-heap of pending due steps — a few int stores per event
    instead of touching every resident counter on every branch.

    Steps passed to {!due} must be nondecreasing across calls on one
    instance (every driver walks its trace forward); entries that fall
    behind the query step are discarded as stale. *)

type t

val create : ?k_of:(int -> int) -> blocks:int -> k:int -> unit -> t
(** [k_of] gives each block its own deletion distance (the adaptive
    variant); blocks default to the uniform [k].
    @raise Invalid_argument if [k < 1], [blocks < 1], or [k_of]
    returns a value below 1. *)

val k : t -> int
(** The uniform/default k. *)

val k_for : t -> block:int -> int
(** The effective k of one block. *)

val track : t -> block:int -> step:int -> unit
(** (Re)starts the block's counter at [step] — on execution, or when a
    pre-decompressed copy materializes. *)

val untrack : t -> block:int -> unit
(** Stops tracking (the copy was deleted or evicted). *)

val tracked : t -> block:int -> bool

val counter : t -> block:int -> step:int -> int option
(** Current counter value at [step]; [None] if untracked. *)

val due : t -> step:int -> int list
(** Blocks whose counter reaches exactly [k] at [step], i.e. whose
    copies the algorithm deletes on this edge traversal. Each block is
    reported at most once per reset; the caller decides whether to
    actually delete (the branch target itself is spared — its counter
    resets instead, §5). Sorted. *)
