(* Remember sets are tiny (a handful of branch sites per target), so
   each one is an unsorted int list plus a cached cardinal: membership
   is a short scan over immediates, recording a site is one cons. The
   previous IntSet representation allocated a balanced-tree node per
   insert on the engine's per-step patch path. *)

type t = {
  sites : int list array;  (* no duplicates, unsorted *)
  counts : int array;
}

let create ~blocks =
  if blocks <= 0 then invalid_arg "Memsim.Remember.create";
  { sites = Array.make blocks []; counts = Array.make blocks 0 }

let rec mem_int (x : int) = function
  | [] -> false
  | y :: tl -> y = x || mem_int x tl

let record t ~target ~site =
  let l = t.sites.(target) in
  if mem_int site l then false
  else begin
    t.sites.(target) <- site :: l;
    t.counts.(target) <- t.counts.(target) + 1;
    true
  end

let sites t ~target = List.sort compare t.sites.(target)
let cardinal t ~target = t.counts.(target)

let flush t ~target =
  let n = t.counts.(target) in
  t.sites.(target) <- [];
  t.counts.(target) <- 0;
  n

(* No duplicates, so dropping the first match is dropping them all. *)
let rec remove_int (x : int) = function
  | [] -> []
  | y :: tl -> if y = x then tl else y :: remove_int x tl

let remove_site t ~target ~site =
  let l = t.sites.(target) in
  if mem_int site l then begin
    t.sites.(target) <- remove_int site l;
    t.counts.(target) <- t.counts.(target) - 1;
    true
  end
  else false

let total_sites t = Array.fold_left ( + ) 0 t.counts
