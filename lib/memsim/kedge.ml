type t = {
  k : int;
  k_of : int -> int;
  base : int array;  (* step of last reset; -1 = untracked *)
  (* Pending due entries as a binary min-heap on the due step, kept in
     two parallel int arrays. Entries are never updated in place: a
     re-track just pushes a new entry and [due] drops stale ones (an
     entry is live only while the block's current [base + k] still
     lands on the entry's step). With the engine's monotone step
     sequence a push's sift-up terminates immediately, so tracking is
     a couple of stores — no hashing, no allocation. *)
  mutable hdue : int array;
  mutable hblk : int array;
  mutable hsize : int;
  (* Scratch buffer [due] collects into before sorting; reused across
     calls so the common empty/singleton result costs at most one
     cons. Compiled without flambda, local refs and closures are real
     heap allocations, so the helpers below are top-level recursive
     functions over ints. *)
  mutable scratch : int array;
}

let create ?k_of ~blocks ~k () =
  if k < 1 then invalid_arg "Memsim.Kedge.create: k must be >= 1";
  if blocks < 1 then invalid_arg "Memsim.Kedge.create: blocks must be >= 1";
  let k_of =
    match k_of with
    | None -> fun _ -> k
    | Some f ->
      fun b ->
        let kb = f b in
        if kb < 1 then invalid_arg "Memsim.Kedge: per-block k must be >= 1"
        else kb
  in
  {
    k;
    k_of;
    base = Array.make blocks (-1);
    hdue = Array.make 64 0;
    hblk = Array.make 64 0;
    hsize = 0;
    scratch = Array.make 16 0;
  }

let k t = t.k
let k_for t ~block = t.k_of block

let rec sift_up hdue hblk i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if hdue.(p) > hdue.(i) then begin
      let d = hdue.(p) and b = hblk.(p) in
      hdue.(p) <- hdue.(i);
      hblk.(p) <- hblk.(i);
      hdue.(i) <- d;
      hblk.(i) <- b;
      sift_up hdue hblk p
    end
  end

let rec sift_down hdue hblk n i =
  let l = (2 * i) + 1 in
  if l < n then begin
    let r = l + 1 in
    let s = if hdue.(l) < hdue.(i) then l else i in
    let s = if r < n && hdue.(r) < hdue.(s) then r else s in
    if s <> i then begin
      let d = hdue.(s) and b = hblk.(s) in
      hdue.(s) <- hdue.(i);
      hblk.(s) <- hblk.(i);
      hdue.(i) <- d;
      hblk.(i) <- b;
      sift_down hdue hblk n s
    end
  end

let heap_push t due block =
  let n = t.hsize in
  if n = Array.length t.hdue then begin
    let cap = 2 * n in
    let hdue = Array.make cap 0 and hblk = Array.make cap 0 in
    Array.blit t.hdue 0 hdue 0 n;
    Array.blit t.hblk 0 hblk 0 n;
    t.hdue <- hdue;
    t.hblk <- hblk
  end;
  t.hdue.(n) <- due;
  t.hblk.(n) <- block;
  t.hsize <- n + 1;
  sift_up t.hdue t.hblk n

let heap_pop t =
  let n = t.hsize - 1 in
  let hdue = t.hdue and hblk = t.hblk in
  hdue.(0) <- hdue.(n);
  hblk.(0) <- hblk.(n);
  t.hsize <- n;
  sift_down hdue hblk n 0

let track t ~block ~step =
  t.base.(block) <- step;
  let kb = t.k_of block in
  (* Guard against overflow for "never compress" style huge k. *)
  if kb <= max_int - step then heap_push t (step + kb) block

let untrack t ~block = t.base.(block) <- -1
let tracked t ~block = t.base.(block) >= 0

let counter t ~block ~step =
  let base = t.base.(block) in
  if base < 0 then None else Some (step - base)

let scratch_push t n b =
  if n = Array.length t.scratch then begin
    let a = Array.make (2 * n) 0 in
    Array.blit t.scratch 0 a 0 n;
    t.scratch <- a
  end;
  t.scratch.(n) <- b

(* Pop every heap entry at or below [step] into the scratch buffer,
   keeping only live ones: a block is really due only if it was not
   reset again since the entry was queued and is still tracked.
   Entries below [step] are stale by the same test (their block's
   counter was reset past them) and are discarded on the way. *)
let rec collect_due t step n =
  if t.hsize = 0 || t.hdue.(0) > step then n
  else begin
    let d = t.hdue.(0) and b = t.hblk.(0) in
    heap_pop t;
    if d = step && t.base.(b) >= 0 && t.base.(b) + t.k_of b = step then begin
      scratch_push t n b;
      collect_due t step (n + 1)
    end
    else collect_due t step n
  end

let rec insert_back (a : int array) i x =
  if i >= 0 && a.(i) > x then begin
    a.(i + 1) <- a.(i);
    insert_back a (i - 1) x
  end
  else a.(i + 1) <- x

(* Build the sorted, deduplicated result list right-to-left. *)
let rec build_result (a : int array) n i acc =
  if i < 0 then acc
  else if i < n - 1 && a.(i) = a.(i + 1) then build_result a n (i - 1) acc
  else build_result a n (i - 1) (a.(i) :: acc)

let due t ~step =
  let n = collect_due t step 0 in
  if n = 0 then []
  else begin
    let a = t.scratch in
    for i = 1 to n - 1 do
      let x = a.(i) in
      insert_back a (i - 1) x
    done;
    build_result a n (n - 1) []
  end
