type t = {
  k : int;
  k_of : int -> int;
  base : int array;  (* step of last reset; -1 = untracked *)
  due_at : (int, int list) Hashtbl.t;
}

let create ?k_of ~blocks ~k () =
  if k < 1 then invalid_arg "Memsim.Kedge.create: k must be >= 1";
  if blocks < 1 then invalid_arg "Memsim.Kedge.create: blocks must be >= 1";
  let k_of =
    match k_of with
    | None -> fun _ -> k
    | Some f ->
      fun b ->
        let kb = f b in
        if kb < 1 then invalid_arg "Memsim.Kedge: per-block k must be >= 1"
        else kb
  in
  { k; k_of; base = Array.make blocks (-1); due_at = Hashtbl.create 64 }

let k t = t.k
let k_for t ~block = t.k_of block

let track t ~block ~step =
  t.base.(block) <- step;
  let kb = t.k_of block in
  (* Guard against overflow for "never compress" style huge k. *)
  if kb <= max_int - step then begin
    let due = step + kb in
    let l = Option.value ~default:[] (Hashtbl.find_opt t.due_at due) in
    Hashtbl.replace t.due_at due (block :: l)
  end

let untrack t ~block = t.base.(block) <- -1
let tracked t ~block = t.base.(block) >= 0

let counter t ~block ~step =
  let base = t.base.(block) in
  if base < 0 then None else Some (step - base)

let due t ~step =
  match Hashtbl.find_opt t.due_at step with
  | None -> []
  | Some blocks ->
    Hashtbl.remove t.due_at step;
    (* A block is really due only if it was not reset again since the
       entry was queued and is still tracked. *)
    List.filter
      (fun b -> t.base.(b) >= 0 && t.base.(b) + t.k_of b = step)
      blocks
    |> List.sort_uniq compare
