(** Time-weighted memory-occupancy accounting.

    The level (bytes currently occupied) changes at discrete
    simulation times; {!average} is the integral of the level divided
    by elapsed time, and {!peak} the maximum level ever reached. *)

type t

val create : unit -> t
(** Starts at time 0 with level 0. *)

val set_level : t -> time:int -> level:int -> unit
(** Advances to [time] and sets the new level.
    @raise Invalid_argument if [time] goes backwards or [level] is
    negative. *)

val add : t -> time:int -> delta:int -> unit
(** [set_level] relative to the current level. *)

val level : t -> int
val peak : t -> int

val average : t -> until:int -> float
(** Mean level over [0, until]; advances internal time to [until].
    0 when [until] is 0. *)

val integral : t -> until:int -> int
(** Byte-cycles. *)

val register :
  ?labels:(string * string) list ->
  ?prefix:string ->
  Sim.Metrics.t ->
  t ->
  until:int ->
  unit
(** Publishes [<prefix>_level_bytes], [<prefix>_peak_bytes] and
    [<prefix>_avg_bytes] (average truncated, over [0, until]) into the
    shared registry; [prefix] defaults to ["occupancy"]. Advances
    internal time to [until] like {!average}. *)
