type grouping = { unit_of_block : int array; num_units : int }

let procedures_of_program prog graph =
  (* Procedure entries: address 0 plus every linking-jal target. *)
  let entries = ref [ 0 ] in
  Array.iteri
    (fun i ins ->
      match (ins : Eris.Types.instruction) with
      | Jal (rd, off) when Eris.Types.reg_index rd <> 0 ->
        let target = (i * 4) + 4 + (4 * off) in
        if target >= 0 && target < Eris.Program.byte_size prog then
          entries := target :: !entries
      | Jal _ | Jalr _ | Halt | Branch _ | Alu _ | Alui _ | Lui _ | Load _
      | Store _ -> ())
    prog.Eris.Program.instrs;
  let entries = List.sort_uniq compare !entries in
  let entry_arr = Array.of_list entries in
  let unit_of_addr addr =
    (* Index of the last entry <= addr. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi + 1) / 2 in
        if entry_arr.(mid) <= addr then search mid hi else search lo (mid - 1)
    in
    search 0 (Array.length entry_arr - 1)
  in
  let unit_of_block =
    Array.map
      (fun (b : Cfg.Graph.block) -> unit_of_addr b.addr)
      (Cfg.Graph.blocks graph)
  in
  { unit_of_block; num_units = Array.length entry_arr }

let whole_program graph =
  {
    unit_of_block = Array.make (Cfg.Graph.num_blocks graph) 0;
    num_units = 1;
  }

let block_bytes (sc : Core.Scenario.t) (b : Cfg.Graph.block) =
  match sc.program with
  | Some prog ->
    Eris.Program.slice_bytes prog ~lo:b.addr ~hi:(b.addr + b.byte_size)
  | None -> Core.Scenario.synthetic_block_bytes ~id:b.id ~size:b.byte_size

let regroup (sc : Core.Scenario.t) g =
  let n = Cfg.Graph.num_blocks sc.graph in
  if Array.length g.unit_of_block <> n then
    invalid_arg "Baselines.Granularity.regroup: grouping size mismatch";
  (* Unit contents and sizes. *)
  let members = Array.make g.num_units [] in
  Array.iteri
    (fun b u -> members.(u) <- b :: members.(u))
    g.unit_of_block;
  Array.iteri (fun u l -> members.(u) <- List.rev l) members;
  let unit_info =
    Array.map
      (fun blocks ->
        let buf = Buffer.create 256 in
        let cycles = ref 0 in
        List.iter
          (fun b ->
            let blk = Cfg.Graph.block sc.graph b in
            Buffer.add_bytes buf (block_bytes sc blk);
            cycles := !cycles + blk.exec_cycles)
          blocks;
        let bytes = Bytes.of_string (Buffer.contents buf) in
        {
          Core.Engine.exec_cycles = max 1 !cycles;
          uncompressed_bytes = max 1 (Bytes.length bytes);
          compressed_bytes =
            max 1 (Bytes.length (sc.codec.Compress.Codec.compress bytes));
        })
      members
  in
  (* Unit graph: block sizes are irrelevant (info carries the truth);
     edges are block edges projected onto units, self-edges included
     so re-entry stays a valid traversal. *)
  let edge_set = Hashtbl.create 64 in
  List.iter
    (fun (src, dst, _) ->
      Hashtbl.replace edge_set (g.unit_of_block.(src), g.unit_of_block.(dst)) ())
    (Cfg.Graph.edges sc.graph);
  let edges = Hashtbl.fold (fun e () acc -> e :: acc) edge_set [] in
  let sizes =
    Array.map (fun i -> i.Core.Engine.uncompressed_bytes) unit_info
  in
  let unit_graph = Cfg.Graph.synthetic ~sizes g.num_units (List.sort compare edges) in
  (* Collapse the trace into stays. *)
  let stays = ref [] in
  let cost = ref 0 in
  let current = ref (-1) in
  Array.iter
    (fun b ->
      let u = g.unit_of_block.(b) in
      let c = (Cfg.Graph.block sc.graph b).exec_cycles in
      if u = !current then cost := !cost + c
      else begin
        if !current >= 0 then stays := (!current, !cost) :: !stays;
        current := u;
        cost := c
      end)
    sc.trace;
  if !current >= 0 then stays := (!current, !cost) :: !stays;
  let stays = Array.of_list (List.rev !stays) in
  let unit_trace = Array.map fst stays in
  let step_cycles = Array.map snd stays in
  (unit_graph, unit_info, unit_trace, step_cycles)

let run ?config ?sink ?registry sc g policy =
  let unit_graph, unit_info, unit_trace, step_cycles = regroup sc g in
  let config =
    match config with
    | Some c -> c
    | None -> Core.Config.of_codec sc.Core.Scenario.codec
  in
  Core.Engine.run ~config ?sink ?registry ~step_cycles ~graph:unit_graph
    ~info:unit_info ~trace:unit_trace policy
