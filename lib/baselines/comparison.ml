type row = {
  scheme : string;
  peak_footprint : int;
  avg_footprint : float;
  overhead : float;
  notes : string;
}

let row_of_metrics scheme notes (m : Core.Metrics.t) =
  {
    scheme;
    peak_footprint = m.peak_footprint_bytes;
    avg_footprint = m.avg_footprint_bytes;
    overhead = Core.Metrics.overhead_ratio m;
    notes;
  }

let rows ?config ?sink ?(k = 8) (sc : Core.Scenario.t) =
  let original =
    Array.fold_left
      (fun a (i : Core.Engine.block_info) -> a + i.uncompressed_bytes)
      0 sc.info
  in
  let no_compression =
    {
      scheme = "no-compression";
      peak_footprint = original;
      avg_footprint = float_of_int original;
      overhead = 0.0;
      notes = "whole image resident";
    }
  in
  let ours =
    row_of_metrics "block/k-edge"
      (Printf.sprintf "ours, k=%d, on-demand" k)
      (Core.Scenario.run ?config ?sink sc (Core.Policy.on_demand ~k))
  in
  let once =
    row_of_metrics "block/decompress-once" "blocks never recompressed"
      (Core.Scenario.run ?config ?sink sc Core.Policy.never_compress)
  in
  let procedure =
    match sc.program with
    | None -> []
    | Some prog ->
      let grouping = Granularity.procedures_of_program prog sc.graph in
      [
        row_of_metrics "procedure/k-edge"
          (Printf.sprintf "Debray-Evans/Kirovski granularity, %d procs"
             grouping.num_units)
          (Granularity.run ?config ?sink sc grouping (Core.Policy.on_demand ~k));
      ]
  in
  let whole =
    let grouping = Granularity.whole_program sc.graph in
    row_of_metrics "whole-image"
      "single compressed unit"
      (Granularity.run ?config ?sink sc grouping (Core.Policy.on_demand ~k))
  in
  let cold =
    let r = Cold_code.run ?config ?sink sc in
    {
      scheme = "cold-code-static";
      peak_footprint = r.Cold_code.static_bytes;
      avg_footprint = float_of_int r.Cold_code.static_bytes;
      overhead = Cold_code.overhead_ratio r;
      notes =
        Printf.sprintf "%d hot / %d cold blocks" r.Cold_code.hot_blocks
          r.Cold_code.cold_blocks;
    }
  in
  [ no_compression; ours; once ] @ procedure @ [ whole; cold ]
