type result = {
  hot_blocks : int;
  cold_blocks : int;
  static_bytes : int;
  buffer_bytes : int;
  total_cycles : int;
  baseline_cycles : int;
  decompressions : int;
  energy_nj : int;
}

let overhead_ratio r =
  if r.baseline_cycles = 0 then 0.0
  else (float_of_int r.total_cycles /. float_of_int r.baseline_cycles) -. 1.0

let run ?config ?sink ?(hot_fraction = 0.95) (sc : Core.Scenario.t) =
  let config =
    match config with Some c -> c | None -> Core.Config.of_codec sc.codec
  in
  let emit =
    match sink with
    | Some (s : Sim.Events.sink) -> s.Sim.Events.emit
    | None -> fun _ -> ()
  in
  let n = Cfg.Graph.num_blocks sc.graph in
  let profile = Core.Scenario.profile sc in
  let hot = Array.make n false in
  List.iter
    (fun b -> hot.(b) <- true)
    (Cfg.Profile.hot_blocks profile ~fraction:hot_fraction);
  let cold_usizes = ref [] in
  let static_bytes = ref 0 in
  let hot_count = ref 0 in
  Array.iteri
    (fun b (info : Core.Engine.block_info) ->
      if hot.(b) then begin
        incr hot_count;
        static_bytes := !static_bytes + info.uncompressed_bytes
      end
      else begin
        static_bytes := !static_bytes + info.compressed_bytes;
        cold_usizes := info.uncompressed_bytes :: !cold_usizes
      end)
    sc.info;
  let buffer_bytes = List.fold_left max 0 !cold_usizes in
  let baseline_cycles =
    Array.fold_left (fun a b -> a + sc.info.(b).Core.Engine.exec_cycles) 0 sc.trace
  in
  let total = ref 0 and decompressions = ref 0 in
  let acc = Sim.Cost.Acc.create () in
  let costs = config.Core.Config.costs in
  let charge src v =
    Sim.Cost.Acc.charge acc src v;
    total := !total + v.Sim.Cost.cycles
  in
  (* The reserved buffer is a one-slot residency area with an inline
     retention policy: the occupant is always the eviction victim, and
     nothing ever ages out on its own. *)
  let occupant = ref (-1) in
  let buffer_policy =
    {
      Residency.Policy.name = "cold-buffer";
      on_materialize = (fun ~block ~step:_ -> occupant := block);
      on_ready = (fun ~block:_ ~time:_ -> ());
      on_execute = (fun ~block:_ ~step:_ ~time:_ -> ());
      rearm = (fun ~block:_ ~step:_ -> ());
      due = (fun ~step:_ -> []);
      victim =
        (fun ~exclude ->
          if !occupant >= 0 && not (exclude !occupant) then Some !occupant
          else None);
      on_release = (fun ~block -> if !occupant = block then occupant := -1);
      describe = (fun () -> "one-block cold buffer, replaced on entry");
    }
  in
  let area =
    Residency.Area.create ~policy:buffer_policy ~blocks:n ~emit
      ~now:(fun () -> !total)
      ~site_key:Fun.id ()
  in
  Array.iteri
    (fun step b ->
      charge Sim.Cost.Exec
        (Sim.Cost.exec_charge costs
           ~cycles:sc.info.(b).Core.Engine.exec_cycles);
      emit (Sim.Events.Exec { block = b; at = !total });
      if (not hot.(b)) && !occupant <> b then begin
        (match Residency.Area.victim area ~exclude:(fun _ -> false) with
        | Some v ->
          ignore (Residency.Area.discard area ~block:v ~patch_back:(fun _ -> true))
        | None -> ());
        incr decompressions;
        emit (Sim.Events.Exception { block = b; at = !total });
        charge Sim.Cost.Exception (Sim.Cost.exception_charge costs);
        let dec_charge =
          Sim.Cost.demand_dec_charge costs
            ~compressed_bytes:sc.info.(b).Core.Engine.compressed_bytes
            ~uncompressed_bytes:sc.info.(b).Core.Engine.uncompressed_bytes
        in
        charge Sim.Cost.Demand_dec dec_charge;
        Residency.Area.on_materialize area ~block:b ~step;
        emit
          (Sim.Events.Demand_decompress
             { block = b; at = !total; cycles = dec_charge.Sim.Cost.cycles })
      end)
    sc.trace;
  {
    hot_blocks = !hot_count;
    cold_blocks = n - !hot_count;
    static_bytes = !static_bytes + buffer_bytes;
    buffer_bytes;
    total_cycles = !total;
    baseline_cycles;
    decompressions = !decompressions;
    energy_nj = (Sim.Cost.Acc.total acc).Sim.Cost.energy_nj;
  }
