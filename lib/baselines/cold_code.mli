(** Static cold-code compression (Debray & Evans style): profile the
    program once, keep the hot blocks permanently uncompressed, store
    only the cold blocks compressed, and decompress a cold block into
    a single reserved buffer each time execution enters cold code.

    Unlike the paper's scheme, hot blocks here have {e no} compressed
    copy (they are stored uncompressed), so the static image is
    [hot uncompressed + cold compressed + one buffer]. The runtime
    cost is one exception + decompression per entry into a cold block
    that is not already in the buffer. *)

type result = {
  hot_blocks : int;
  cold_blocks : int;
  static_bytes : int;  (** hot + compressed cold + buffer *)
  buffer_bytes : int;
  total_cycles : int;
  baseline_cycles : int;
  decompressions : int;
  energy_nj : int;
      (** execution + exception + decompression energy under the
          config's cost model; 0 under the [paper-2005] profile *)
}

val overhead_ratio : result -> float

val run :
  ?config:Core.Config.t ->
  ?sink:Sim.Events.sink ->
  ?hot_fraction:float ->
  Core.Scenario.t ->
  result
(** [hot_fraction] (default 0.95) is the fraction of dynamic block
    visits the hot set must cover, per the scenario's own profile.
    The reserved buffer is driven as a one-slot {!Residency.Area}
    with an inline replace-on-entry policy, so its lifecycle speaks
    the same vocabulary as the engine's. [sink] streams the replay as
    {!Sim.Events}: an [Exec] per trace step, an [Exception] +
    [Demand_decompress] pair per buffer miss, and a [Discard] when a
    miss replaces the previous occupant, timestamped in accumulated
    cycles. The sink is not closed. *)
