(** Coarser compression granularities, for the paper's §6 comparison
    against procedure-based schemes (Debray–Evans, Kirovski et al.).

    A grouping maps each basic block to a {e unit}; the scenario is
    re-expressed at unit granularity (unit CFG, unit sizes, collapsed
    trace with exact per-stay cycle costs) and run through the same
    engine, so the only variable is the granularity itself. *)

type grouping = {
  unit_of_block : int array;  (** block id -> unit id, dense from 0 *)
  num_units : int;
}

val procedures_of_program : Eris.Program.t -> Cfg.Graph.t -> grouping
(** Units are procedures: address 0 plus every target of a linking
    [jal] starts one; a block belongs to the nearest preceding
    procedure entry. *)

val whole_program : Cfg.Graph.t -> grouping
(** One unit containing everything (the coarsest possible scheme). *)

val regroup :
  Core.Scenario.t ->
  grouping ->
  Cfg.Graph.t * Core.Engine.block_info array * int array * int array
(** [regroup scenario g] is [(unit_graph, unit_info, unit_trace,
    step_cycles)]: consecutive trace entries in the same unit collapse
    into one stay whose cost is the exact sum of its blocks' cycles;
    unit bytes are the concatenation of member block bytes, compressed
    with the scenario's codec. *)

val run :
  ?config:Core.Config.t ->
  ?sink:Sim.Events.sink ->
  ?registry:Sim.Metrics.t ->
  Core.Scenario.t ->
  grouping ->
  Core.Policy.t ->
  Core.Metrics.t
(** {!regroup} followed by {!Core.Engine.run}; [sink]/[registry]
    stream unit-granularity events and publish final metrics through
    the {!Sim} kernel. *)
