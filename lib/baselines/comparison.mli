(** Cross-scheme comparison rows for experiment E11: the same scenario
    under every memory-management scheme, on one axis of granularity
    and one of policy. *)

type row = {
  scheme : string;
  peak_footprint : int;  (** worst-moment memory for code, bytes *)
  avg_footprint : float;
  overhead : float;  (** cycle overhead ratio vs. plain execution *)
  notes : string;
}

val rows :
  ?config:Core.Config.t ->
  ?sink:Sim.Events.sink ->
  ?k:int ->
  Core.Scenario.t ->
  row list
(** Schemes, in order: [no-compression], [block/k-edge] (ours, with
    the given [k], default 8), [block/decompress-once],
    [procedure/k-edge] (when the scenario has a program),
    [whole-image], [cold-code-static]. When [sink] is given, every
    scheme's event stream flows into it in that order (the sink is
    not closed). *)
