(** The three-thread execution engine (paper, Figure 4).

    The engine replays a basic-block trace against a CFG under a
    {!Policy.t}: the {e execution thread} advances through the trace;
    the {e decompression thread} serves pre-decompression requests
    running ahead of it; the {e compression thread} trails behind,
    deleting (or recompressing) the copies the k-edge algorithm
    retires. Helper threads run concurrently with execution — they
    only cost wall-clock time when the execution thread actually has
    to wait (a demand miss, or arriving at a block whose
    pre-decompression is still in flight).

    Timing model, per §5: entering a block whose branch site still
    points into the compressed area raises a memory-protection
    exception ([exception_cycles]); the handler decompresses if needed
    ([dec_setup + dec_per_byte × compressed size], on the critical
    path for demand misses) and patches the branch site
    ([patch_cycles], recorded in the block's remember set). Steady
    state — resident block, patched site — costs nothing.

    The engine runs on the {!Sim} kernel: time comes from
    {!Sim.Clock}, costs from the {!Sim.Cost} model inside
    {!Config.t}, and the run narrates itself through {!Sim.Events}
    sinks in constant memory — occupancy accounting streams into
    {!Memsim.Accounting} as the trace advances instead of
    materializing an O(trace-length) event list. *)

type block_info = {
  exec_cycles : int;
  uncompressed_bytes : int;
  compressed_bytes : int;
}

val info_of_graph :
  ?ratio:float -> Cfg.Graph.t -> block_info array
(** Synthetic info for graphs without real code: compressed size is
    [ratio] (default 0.6) of the block's byte size, at least 1. *)

val info_of_program :
  codec:Compress.Codec.t -> Eris.Program.t -> Cfg.Graph.t -> block_info array
(** Real info: each block's image bytes compressed with [codec]. *)

(** The shared {!Sim.Events.t} vocabulary, re-exported so existing
    [Core.Engine.Exec]-style constructor paths keep working. The
    engine itself never emits [Unpatch] or [Flush] (those are the
    executable runtime's); times are cycles. *)
type event = Sim.Events.t =
  | Exec of { block : int; at : int }
  | Exception of { block : int; at : int }
  | Demand_decompress of { block : int; at : int; cycles : int }
  | Prefetch_issue of { block : int; at : int; ready_at : int }
  | Stall of { block : int; at : int; cycles : int }
  | Patch of { target : int; site : int; at : int }
  | Unpatch of { target : int; site : int; at : int }
  | Discard of { block : int; at : int; patched_back : int; wasted : bool }
  | Evict of { block : int; at : int }
  | Recompress_queued of { block : int; at : int; done_at : int }
  | Flush of { at : int; copies : int }

val run :
  ?config:Config.t ->
  ?log:(event -> unit) ->
  ?sink:Sim.Events.sink ->
  ?registry:Sim.Metrics.t ->
  ?charge_log:(Sim.Cost.source -> Sim.Cost.vector -> unit) ->
  ?step_cycles:int array ->
  graph:Cfg.Graph.t ->
  info:block_info array ->
  trace:int array ->
  Policy.t ->
  Metrics.t
(** Simulates the trace. The memory image starts fully compressed
    (§5). Every event is pushed into [sink] (and [log], kept for
    callback convenience) as it happens; the engine never retains
    events, so memory use is independent of trace length. The sink is
    {e not} closed — the caller owns its lifecycle. When [registry]
    is given, the final {!Metrics.t} is published into it via
    {!Metrics.register}. [charge_log] observes every cost vector as
    it is charged (source + vector), including the final RAM-leakage
    charge — summing what it sees reproduces the per-dimension totals
    in the returned metrics exactly. [step_cycles] overrides each
    trace step's execution cost (used by coarser-granularity
    baselines whose per-visit cost varies); by default step [i] costs
    [info.(trace.(i)).exec_cycles].
    @raise Invalid_argument if [info] does not match the graph, the
    trace mentions unknown blocks, or [step_cycles] has the wrong
    length. *)
