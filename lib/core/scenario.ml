type t = {
  name : string;
  graph : Cfg.Graph.t;
  info : Engine.block_info array;
  trace : int array;
  codec : Compress.Codec.t;
  program : Eris.Program.t option;
}

let of_program ?(name = "program") ?codec ?fuel ?mem_init prog =
  (* Default to the positional shared-Huffman model trained on this
     very image — the realistic choice for code compression, where the
     dictionary ships once with the system. *)
  let codec =
    match codec with
    | Some c -> c
    | None -> Compress.Registry.code_codec ~corpus:prog.Eris.Program.image
  in
  let graph, trace = Cfg.Build.trace_of_run ?fuel ?mem_init prog in
  let info = Engine.info_of_program ~codec prog graph in
  { name; graph; info; trace; codec; program = Some prog }

let of_source ?name ?codec ?fuel ?mem_init source =
  of_program ?name ?codec ?fuel ?mem_init (Eris.Asm.assemble_exn source)

(* Pseudo-code bytes: each block draws its words from a small private
   pool of canonical instructions, mostly repeated verbatim and
   occasionally perturbed in one operand field — the kind of local
   redundancy real RISC instruction streams exhibit, which is what
   makes per-block code compression viable at all. *)
let synthetic_block_bytes ~id ~size =
  let b = Bytes.create size in
  let state = ref (((id + 1) * 2654435761) land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  let pool = Array.init 5 (fun _ -> next () land 0xFFFFFF) in
  let set_word w word =
    Bytes.set b (4 * w) (Char.chr (word land 0xFF));
    Bytes.set b ((4 * w) + 1) (Char.chr ((word lsr 8) land 0xFF));
    Bytes.set b ((4 * w) + 2) (Char.chr ((word lsr 16) land 0xFF));
    Bytes.set b ((4 * w) + 3) (Char.chr ((word lsr 24) land 0xFF))
  in
  for w = 0 to (size / 4) - 1 do
    let r = next () in
    let base = pool.(r mod Array.length pool) in
    let word =
      if r land 0xF < 11 then base
      else base lxor (((r lsr 8) land 0xF) lsl 18)
    in
    set_word w word
  done;
  for i = size / 4 * 4 to size - 1 do
    Bytes.set b i '\000'
  done;
  b

let of_graph ?(name = "synthetic") ?(codec = Compress.Registry.default) graph
    ~trace =
  let info =
    Array.map
      (fun (blk : Cfg.Graph.block) ->
        let bytes = synthetic_block_bytes ~id:blk.id ~size:blk.byte_size in
        {
          Engine.exec_cycles = blk.exec_cycles;
          uncompressed_bytes = blk.byte_size;
          compressed_bytes = Bytes.length (codec.Compress.Codec.compress bytes);
        })
      (Cfg.Graph.blocks graph)
  in
  { name; graph; info; trace; codec; program = None }

let run ?config ?profile ?log ?sink ?registry ?charge_log t policy =
  let config =
    match config with
    | Some c -> c
    | None -> Config.of_codec ?profile t.codec
  in
  Engine.run ~config ?log ?sink ?registry ?charge_log ~graph:t.graph
    ~info:t.info ~trace:t.trace policy

let profile t = Cfg.Profile.of_trace t.graph t.trace

let pp_summary ppf t =
  let original = Array.fold_left (fun a i -> a + i.Engine.uncompressed_bytes) 0 t.info in
  let compressed = Array.fold_left (fun a i -> a + i.Engine.compressed_bytes) 0 t.info in
  Format.fprintf ppf
    "%s: %d blocks, %d edges, trace %d, image %dB -> %dB compressed (%.2f) \
     [codec %s]"
    t.name
    (Cfg.Graph.num_blocks t.graph)
    (Cfg.Graph.num_edges t.graph)
    (Array.length t.trace) original compressed
    (float_of_int compressed /. float_of_int (max original 1))
    t.codec.Compress.Codec.name
