type cost_model = Sim.Cost.t = {
  exception_cycles : int;
  patch_cycles : int;
  dec_setup_cycles : int;
  dec_cycles_per_byte : int;
  comp_setup_cycles : int;
  comp_cycles_per_byte : int;
}

let default_cost_model = Sim.Cost.default

let cost_model_of_codec codec =
  Sim.Cost.with_rates
    ~dec_cycles_per_byte:codec.Compress.Codec.dec_cycles_per_byte
    ~comp_cycles_per_byte:codec.Compress.Codec.comp_cycles_per_byte
    Sim.Cost.default

type t = { costs : cost_model }

let default = { costs = default_cost_model }
let of_codec codec = { costs = cost_model_of_codec codec }

let dec_cycles t ~compressed_bytes =
  Sim.Cost.dec_cycles t.costs ~compressed_bytes

let comp_cycles t ~uncompressed_bytes =
  Sim.Cost.comp_cycles t.costs ~uncompressed_bytes
