type cost_model = Sim.Cost.t = {
  exception_cycles : int;
  patch_cycles : int;
  dec_setup_cycles : int;
  dec_cycles_per_byte : int;
  comp_setup_cycles : int;
  comp_cycles_per_byte : int;
  energy : Sim.Cost.energy_model;
  profile : string;
}

let default_cost_model = Sim.Cost.default
let profiles = Sim.Cost.profile_names
let cost_model_of_profile name = Sim.Cost.profile name

let cost_model_of_codec ?(profile = "paper-2005") codec =
  Sim.Cost.with_rates
    ~dec_cycles_per_byte:codec.Compress.Codec.dec_cycles_per_byte
    ~comp_cycles_per_byte:codec.Compress.Codec.comp_cycles_per_byte
    (Sim.Cost.profile profile)

type t = { costs : cost_model }

let make costs = { costs = Sim.Cost.validate costs }
let default = { costs = default_cost_model }
let of_profile name = { costs = cost_model_of_profile name }
let of_codec ?profile codec = { costs = cost_model_of_codec ?profile codec }

let dec_cycles t ~compressed_bytes =
  Sim.Cost.dec_cycles t.costs ~compressed_bytes

let comp_cycles t ~uncompressed_bytes =
  Sim.Cost.comp_cycles t.costs ~uncompressed_bytes
