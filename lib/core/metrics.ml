type t = {
  total_cycles : int;
  exec_cycles : int;
  exception_cycles : int;
  patch_cycles : int;
  demand_dec_cycles : int;
  stall_cycles : int;
  baseline_cycles : int;
  exceptions : int;
  patches : int;
  demand_decompressions : int;
  prefetch_decompressions : int;
  useful_prefetches : int;
  wasted_prefetches : int;
  discards : int;
  evictions : int;
  budget_overflows : int;
  dec_thread_busy_cycles : int;
  comp_thread_busy_cycles : int;
  energy_nj : int;
  exec_energy_nj : int;
  exception_energy_nj : int;
  patch_energy_nj : int;
  dec_energy_nj : int;
  comp_energy_nj : int;
  ram_static_energy_nj : int;
  baseline_energy_nj : int;
  original_bytes : int;
  compressed_area_bytes : int;
  peak_decompressed_bytes : int;
  avg_decompressed_bytes : float;
  peak_footprint_bytes : int;
  avg_footprint_bytes : float;
  trace_length : int;
  blocks : int;
}

let overhead_ratio t =
  if t.baseline_cycles = 0 then 0.0
  else
    (float_of_int t.total_cycles /. float_of_int t.baseline_cycles) -. 1.0

let energy_overhead_ratio t =
  if t.baseline_energy_nj = 0 then 0.0
  else
    (float_of_int t.energy_nj /. float_of_int t.baseline_energy_nj) -. 1.0

let peak_memory_saving t =
  if t.original_bytes = 0 then 0.0
  else
    1.0 -. (float_of_int t.peak_footprint_bytes /. float_of_int t.original_bytes)

let avg_memory_saving t =
  if t.original_bytes = 0 then 0.0
  else 1.0 -. (t.avg_footprint_bytes /. float_of_int t.original_bytes)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles: %d (baseline %d, overhead %.1f%%)@,\
     \  exec %d, exceptions %d, patches %d, demand-dec %d, stalls %d@,\
     events: %d exceptions, %d patches, %d demand / %d prefetch \
     decompressions (%d useful, %d wasted), %d discards, %d evictions, %d \
     overflows@,\
     threads: dec busy %d, comp busy %d@,\
     energy: %dnJ (baseline %dnJ, overhead %.1f%%)@,\
     \  exec %d, exceptions %d, patches %d, dec %d, comp %d, ram-static \
     %dnJ@,\
     memory: original %dB, compressed area %dB, decompressed peak %dB (avg \
     %.1fB)@,\
     \  footprint peak %dB (saving %.1f%%), avg %.1fB (saving %.1f%%)@]"
    t.total_cycles t.baseline_cycles
    (100.0 *. overhead_ratio t)
    t.exec_cycles t.exception_cycles t.patch_cycles t.demand_dec_cycles
    t.stall_cycles t.exceptions t.patches t.demand_decompressions
    t.prefetch_decompressions t.useful_prefetches t.wasted_prefetches
    t.discards t.evictions t.budget_overflows t.dec_thread_busy_cycles
    t.comp_thread_busy_cycles t.energy_nj t.baseline_energy_nj
    (100.0 *. energy_overhead_ratio t)
    t.exec_energy_nj t.exception_energy_nj t.patch_energy_nj t.dec_energy_nj
    t.comp_energy_nj t.ram_static_energy_nj t.original_bytes
    t.compressed_area_bytes
    t.peak_decompressed_bytes t.avg_decompressed_bytes t.peak_footprint_bytes
    (100.0 *. peak_memory_saving t)
    t.avg_footprint_bytes
    (100.0 *. avg_memory_saving t)

let register ?(labels = []) registry t =
  let c name v = Sim.Metrics.set (Sim.Metrics.counter registry ~labels name) v in
  c "total_cycles" t.total_cycles;
  c "exec_cycles" t.exec_cycles;
  c "exception_cycles" t.exception_cycles;
  c "patch_cycles" t.patch_cycles;
  c "demand_dec_cycles" t.demand_dec_cycles;
  c "stall_cycles" t.stall_cycles;
  c "baseline_cycles" t.baseline_cycles;
  c "exceptions" t.exceptions;
  c "patches" t.patches;
  c "demand_decompressions" t.demand_decompressions;
  c "prefetch_decompressions" t.prefetch_decompressions;
  c "useful_prefetches" t.useful_prefetches;
  c "wasted_prefetches" t.wasted_prefetches;
  c "discards" t.discards;
  c "evictions" t.evictions;
  c "budget_overflows" t.budget_overflows;
  c "dec_thread_busy_cycles" t.dec_thread_busy_cycles;
  c "comp_thread_busy_cycles" t.comp_thread_busy_cycles;
  c "energy_nj" t.energy_nj;
  c "exec_energy_nj" t.exec_energy_nj;
  c "exception_energy_nj" t.exception_energy_nj;
  c "patch_energy_nj" t.patch_energy_nj;
  c "dec_energy_nj" t.dec_energy_nj;
  c "comp_energy_nj" t.comp_energy_nj;
  c "ram_static_energy_nj" t.ram_static_energy_nj;
  c "baseline_energy_nj" t.baseline_energy_nj;
  c "original_bytes" t.original_bytes;
  c "compressed_area_bytes" t.compressed_area_bytes;
  c "peak_decompressed_bytes" t.peak_decompressed_bytes;
  c "avg_decompressed_bytes" (int_of_float t.avg_decompressed_bytes);
  c "peak_footprint_bytes" t.peak_footprint_bytes;
  c "avg_footprint_bytes" (int_of_float t.avg_footprint_bytes);
  c "trace_length" t.trace_length;
  c "blocks" t.blocks

let pp_brief ppf t =
  Format.fprintf ppf "overhead %.1f%%, peak saving %.1f%%, avg saving %.1f%%"
    (100.0 *. overhead_ratio t)
    (100.0 *. peak_memory_saving t)
    (100.0 *. avg_memory_saving t)
