type block_info = {
  exec_cycles : int;
  uncompressed_bytes : int;
  compressed_bytes : int;
}

let info_of_graph ?(ratio = 0.6) g =
  Array.map
    (fun (b : Cfg.Graph.block) ->
      {
        exec_cycles = b.exec_cycles;
        uncompressed_bytes = b.byte_size;
        compressed_bytes =
          max 1 (int_of_float (ratio *. float_of_int b.byte_size));
      })
    (Cfg.Graph.blocks g)

let info_of_program ~codec prog g =
  Array.map
    (fun (b : Cfg.Graph.block) ->
      let bytes =
        Eris.Program.slice_bytes prog ~lo:b.addr ~hi:(b.addr + b.byte_size)
      in
      {
        exec_cycles = b.exec_cycles;
        uncompressed_bytes = b.byte_size;
        compressed_bytes = Bytes.length (codec.Compress.Codec.compress bytes);
      })
    (Cfg.Graph.blocks g)

(* The engine speaks the shared simulation vocabulary; the re-export
   keeps the historical [Core.Engine.Exec]-style paths valid. *)
type event = Sim.Events.t =
  | Exec of { block : int; at : int }
  | Exception of { block : int; at : int }
  | Demand_decompress of { block : int; at : int; cycles : int }
  | Prefetch_issue of { block : int; at : int; ready_at : int }
  | Stall of { block : int; at : int; cycles : int }
  | Patch of { target : int; site : int; at : int }
  | Unpatch of { target : int; site : int; at : int }
  | Discard of { block : int; at : int; patched_back : int; wasted : bool }
  | Evict of { block : int; at : int }
  | Recompress_queued of { block : int; at : int; done_at : int }
  | Flush of { at : int; copies : int }

module Packed = Sim.Events.Packed

(* Residency state of one block's decompressed copy, int-coded so the
   per-step transitions are plain stores (the old variant allocated a
   [Resident] record on every demand decompression). Tag in the low
   two bits, flags above; [Decompressing]/[Recompressing] park their
   timestamp in the [aux] array. *)
let tag_compressed = 0
let tag_decompressing = 1
let tag_resident = 2
let tag_recompressing = 3
let bit_used = 4
let bit_prefetched = 8

(* Streaming occupancy accounting: deltas arrive in nondecreasing
   timestamp order except for recompression frees dated in the future;
   those wait in [future] (bounded by the in-flight recompressions,
   not the trace). Same-timestamp deltas are buffered and applied
   smallest-first, reproducing exactly the global (time, delta) sort
   the engine used to perform over the whole O(trace) event list. *)
type occupancy = {
  acct : Memsim.Accounting.t;
  mutable future : (int * int) list;  (* (time, delta), sorted *)
  mutable buf_time : int;
  mutable buf : int array;  (* deltas at [buf_time], unordered *)
  mutable buf_len : int;
  mutable horizon : int;  (* latest timestamp ever posted *)
}

type state = {
  graph : Cfg.Graph.t;
  info : block_info array;
  policy : Policy.t;
  config : Config.t;
  (* packed event stream: the hot paths push into [ev] and hand full
     chunks to [deliver]; nothing per-event is heap-allocated *)
  ev : Packed.chunk;
  deliver : Packed.chunk -> unit;
  stat : int array;  (* int-coded status, see the tag_/bit_ constants *)
  aux : int array;  (* ready_at / done_at for the in-flight tags *)
  area : int Residency.Area.t;
      (* copy lifecycle: retention policy + remember sets; sites are
         the branching block's id *)
  pred_state : Predictor.state;
  clock : Sim.Clock.t;
  dec : Sim.Clock.resource;  (* decompression thread *)
  comp : Sim.Clock.resource;  (* compression thread *)
  occ : occupancy;
  mutable live_bytes : int;  (* decompressed area, settled view *)
  mutable inflight : (int * int) list;  (* (ready_at, block), sorted *)
  mutable pending_frees : (int * int) list;  (* (time, bytes), sorted *)
  (* every priced event lands here as one charge vector; the metrics'
     per-source cycle and energy totals are read back out at the end *)
  acc : Sim.Cost.Acc.acc;
  (* per-block cost tables, precomputed so the inner loop only adds
     ints (the constructors in Sim.Cost stay the single source of the
     pricing formulas — these are their values, cached) *)
  u_size : int array;
  def_cycles : int array;  (* default per-visit execution cycles *)
  dec_cyc : int array;  (* demand/prefetch decompression latency *)
  comp_cyc : int array;  (* recompression latency *)
  demand_nj : int array;
  prefetch_nj : int array;
  recompress_nj : int array;
  succ_arr : int array array;  (* successor ids, precomputed *)
  ret_sites : int array array;  (* per target: return-only pred sites *)
  exc_cyc : int;
  exc_nj : int;
  patch_cyc : int;
  patch_nj : int;
  exec_nj_rate : int;
  (* counters *)
  mutable exceptions : int;
  mutable patches : int;
  mutable demand_decompressions : int;
  mutable prefetch_decompressions : int;
  mutable useful_prefetches : int;
  mutable wasted_prefetches : int;
  mutable discards : int;
  mutable evictions : int;
  mutable budget_overflows : int;
}

(* Ordered insertion, equivalent to the old [List.sort compare (entry
   :: l)] on an already-sorted [l] (the new entry lands before any
   equal element, as stable sort did) without resorting the list. *)
let rec insert_sorted l (entry : int * int) =
  match l with
  | [] -> [ entry ]
  | h :: tl ->
    if compare entry h <= 0 then entry :: l else h :: insert_sorted tl entry

let now st = Sim.Clock.now st.clock

let[@inline] charge_fast st src ~cycles ~energy_nj =
  Sim.Cost.Acc.charge_raw st.acc src ~cycles ~energy_nj

let emit_flush st =
  if Packed.length st.ev > 0 then begin
    st.deliver st.ev;
    Packed.clear st.ev
  end

(* Every push site grabs the chunk through this: full chunks drain to
   the sink first, so a slot is always free. *)
let[@inline] chunk st =
  if Packed.is_full st.ev then emit_flush st;
  st.ev

(* --- occupancy stream --- *)

let rec occ_insert_back (a : int array) j x =
  if j >= 0 && a.(j) > x then begin
    a.(j + 1) <- a.(j);
    occ_insert_back a (j - 1) x
  end
  else a.(j + 1) <- x

let occ_flush_buf occ =
  let n = occ.buf_len in
  if n > 0 then begin
    let a = occ.buf in
    (* Insertion sort: same-timestamp deltas apply smallest first
       (frees before allocations), matching the old global sort. The
       buffer only ever holds the deltas of one timestamp. *)
    for i = 1 to n - 1 do
      let x = a.(i) in
      occ_insert_back a (i - 1) x
    done;
    for i = 0 to n - 1 do
      Memsim.Accounting.add occ.acct ~time:occ.buf_time ~delta:a.(i)
    done;
    occ.buf_len <- 0
  end

let occ_feed occ ~time ~delta =
  if time <> occ.buf_time then begin
    occ_flush_buf occ;
    occ.buf_time <- time
  end;
  let n = occ.buf_len in
  if n = Array.length occ.buf then begin
    let grown = Array.make (2 * n) 0 in
    Array.blit occ.buf 0 grown 0 n;
    occ.buf <- grown
  end;
  occ.buf.(n) <- delta;
  occ.buf_len <- n + 1

let rec occ_drain occ ~upto =
  match occ.future with
  | (time, delta) :: rest when time <= upto ->
    occ.future <- rest;
    occ_feed occ ~time ~delta;
    occ_drain occ ~upto
  | _ :: _ | [] -> ()

let mem_event st ~time ~delta =
  let occ = st.occ in
  if time > occ.horizon then occ.horizon <- time;
  if time > now st then occ.future <- insert_sorted occ.future (time, delta)
  else begin
    occ_drain occ ~upto:time;
    occ_feed occ ~time ~delta
  end

(* Final accounting: flush everything still queued and return the
   time-weighted occupancy of the decompressed area — peak, average,
   and the raw byte-cycles integral (the RAM leakage base). *)
let memory_stats st =
  let occ = st.occ in
  occ_drain occ ~upto:max_int;
  occ_flush_buf occ;
  let end_time = max (now st) occ.horizon in
  let until = max end_time 1 in
  let peak = Memsim.Accounting.peak occ.acct in
  let byte_cycles = Memsim.Accounting.integral occ.acct ~until in
  let avg = float_of_int byte_cycles /. float_of_int until in
  (peak, avg, byte_cycles)

(* Promote finished prefetches and apply recompression frees whose
   time has passed. *)
let settle st =
  (match st.inflight with
  | [] -> ()
  | inflight ->
    let rec promote = function
      | (ready_at, b) :: rest when ready_at <= now st ->
        (if st.stat.(b) land 3 = tag_decompressing then begin
           st.stat.(b) <- st.stat.(b) land bit_prefetched lor tag_resident;
           Residency.Area.on_ready st.area ~block:b ~time:ready_at
         end);
        promote rest
      | rest -> rest
    in
    st.inflight <- promote inflight);
  match st.pending_frees with
  | [] -> ()
  | frees ->
    let rec apply = function
      | (time, bytes) :: rest when time <= now st ->
        st.live_bytes <- st.live_bytes - bytes;
        apply rest
      | rest -> rest
    in
    st.pending_frees <- apply frees

let dec_time st b = st.dec_cyc.(b)

(* Deletes the decompressed copy of [b] (k-edge retirement or LRU
   eviction). Patch-backs run on the compression thread. *)
let delete_copy st ~eviction b =
  let s = st.stat.(b) in
  if s land 3 <> tag_resident then
    invalid_arg "Core.Engine.delete_copy: block not resident";
  let wasted = s land bit_prefetched <> 0 && s land bit_used = 0 in
  if wasted then st.wasted_prefetches <- st.wasted_prefetches + 1;
  (* [release] flushes the remember set and retires the retention
     state; the engine only models patch-back timing, so every site
     "patches back" successfully. Events are emitted below, engine-side,
     to keep Recompress_queued ahead of Discard/Evict in the stream. *)
  let patched_back = Residency.Area.release_count st.area ~block:b in
  st.patches <- st.patches + patched_back;
  charge_fast st Sim.Cost.Patch_back ~cycles:0
    ~energy_nj:(patched_back * st.patch_nj);
  Sim.Clock.push_back st.comp ~now:(now st)
    ~cycles:(patched_back * st.patch_cyc);
  (* Branches inside [b] vanish with it: drop them from the remember
     sets of their targets. *)
  let succs = st.succ_arr.(b) in
  for i = 0 to Array.length succs - 1 do
    ignore (Residency.Area.forget_key st.area ~target:succs.(i) ~key:b)
  done;
  (match st.policy.Policy.mode with
  | Policy.Discard ->
    let u = st.u_size.(b) in
    st.live_bytes <- st.live_bytes - u;
    mem_event st ~time:(now st) ~delta:(-u);
    st.stat.(b) <- tag_compressed
  | Policy.Recompress ->
    charge_fast st Sim.Cost.Recompress ~cycles:0
      ~energy_nj:st.recompress_nj.(b);
    let done_at =
      Sim.Clock.schedule st.comp ~now:(now st) ~cycles:st.comp_cyc.(b)
    in
    st.pending_frees <- insert_sorted st.pending_frees (done_at, st.u_size.(b));
    mem_event st ~time:done_at ~delta:(-st.u_size.(b));
    st.stat.(b) <- tag_recompressing;
    st.aux.(b) <- done_at;
    Packed.push_recompress_queued (chunk st) ~at:(now st) ~block:b ~done_at);
  if eviction then begin
    st.evictions <- st.evictions + 1;
    Packed.push_evict (chunk st) ~at:(now st) ~block:b
  end
  else begin
    st.discards <- st.discards + 1;
    Packed.push_discard (chunk st) ~at:(now st) ~block:b ~patched_back ~wasted
  end

(* Ensures [bytes] fit under the budget, evicting LRU residents.
   Returns false if the space cannot be freed. *)
let make_room st ~exclude bytes =
  match st.policy.Policy.budget with
  | None -> true
  | Some cap ->
    settle st;
    let excluded v =
      List.mem v exclude || st.stat.(v) land 3 <> tag_resident
    in
    let rec evict () =
      if st.live_bytes + bytes <= cap then true
      else
        match Residency.Area.victim st.area ~exclude:excluded with
        | Some v ->
          delete_copy st ~eviction:true v;
          evict ()
        | None -> false
    in
    evict ()

(* Allocates space for a decompressed copy of [b]. The exclude list
   only exists on the budgeted path — the common unbudgeted run
   allocates nothing here. *)
let allocate st b =
  let u = st.u_size.(b) in
  (match st.policy.Policy.budget with
  | None -> ()
  | Some _ ->
    let ok = make_room st ~exclude:[ b ] u in
    if not ok then st.budget_overflows <- st.budget_overflows + 1);
  st.live_bytes <- st.live_bytes + u;
  mem_event st ~time:(now st) ~delta:u

let charge_exception st b =
  st.exceptions <- st.exceptions + 1;
  charge_fast st Sim.Cost.Exception ~cycles:st.exc_cyc
    ~energy_nj:st.exc_nj;
  Sim.Clock.advance st.clock ~cycles:st.exc_cyc;
  Packed.push_exception (chunk st) ~at:(now st) ~block:b

let charge_patch st ~target ~site =
  st.patches <- st.patches + 1;
  charge_fast st Sim.Cost.Patch ~cycles:st.patch_cyc
    ~energy_nj:st.patch_nj;
  Sim.Clock.advance st.clock ~cycles:st.patch_cyc;
  Packed.push_patch (chunk st) ~at:(now st) ~target ~site

(* [site -> target] transfers the runtime can never patch: return
   addresses are home-valued constants materialized at call time, so a
   [jalr] site re-traps on every return and is never recorded. A pair
   qualifies only when every [site -> target] edge is a return — a
   site that can also branch there keeps its patchable slot. *)
let return_only_site st ~site ~target =
  let a = Array.unsafe_get st.ret_sites target in
  let n = Array.length a in
  let rec go i = i < n && (Array.unsafe_get a i = site || go (i + 1)) in
  go 0

(* Records the branch site and charges the patch if it is new. The
   caller has already paid the exception. [site] is -1 on the initial
   entry (nothing to patch); return-only sites are never recorded. *)
let patch_site st ~target ~site =
  if site >= 0 && not (return_only_site st ~site ~target) then
    if Residency.Area.record_site st.area ~target ~site then
      charge_patch st ~target ~site

let stall_until st b t =
  let w = Sim.Clock.wait_until st.clock t in
  if w > 0 then begin
    charge_fast st Sim.Cost.Stall ~cycles:w ~energy_nj:0;
    Packed.push_stall (chunk st) ~at:(now st) ~block:b ~cycles:w
  end

(* The execution thread arrives at block [b], coming from [prev]
   (-1 = initial entry), at trace position [step]. *)
let rec arrive st ~step ~prev b =
  settle st;
  let s = st.stat.(b) in
  match s land 3 with
  | 2 (* Resident *) ->
    (* No cost when the branch already targets the decompressed copy;
       otherwise the exception fires and the handler patches (Fig. 5,
       steps 5-6). The initial entry (no prev) faults too but has no
       site to patch. *)
    if prev >= 0 then begin
      if return_only_site st ~site:prev ~target:b then
        (* the runtime traps on every home-valued return, resident or
           not, and the handler has nothing to patch *)
        charge_exception st b
      else if Residency.Area.record_site st.area ~target:b ~site:prev
      then begin
        charge_exception st b;
        charge_patch st ~target:b ~site:prev
      end
    end
    else charge_exception st b
  | 1 (* Decompressing *) ->
    (* The branch still points into the compressed area: exception,
       then wait for the in-flight pre-decompression. *)
    let ready_at = st.aux.(b) in
    charge_exception st b;
    stall_until st b ready_at;
    st.inflight <- List.filter (fun (_, blk) -> blk <> b) st.inflight;
    st.stat.(b) <- s land bit_prefetched lor tag_resident;
    Residency.Area.on_ready st.area ~block:b ~time:(now st);
    patch_site st ~target:b ~site:prev
  | 3 (* Recompressing *) ->
    (* Rare: reached while the compression thread still owns it. Wait
       out the compression, then take the demand path. *)
    stall_until st b st.aux.(b);
    settle st;
    st.stat.(b) <- tag_compressed;
    arrive st ~step ~prev b
  | _ (* Compressed *) ->
    charge_exception st b;
    allocate st b;
    let cycles = st.dec_cyc.(b) in
    st.demand_decompressions <- st.demand_decompressions + 1;
    charge_fast st Sim.Cost.Demand_dec ~cycles
      ~energy_nj:st.demand_nj.(b);
    Sim.Clock.advance st.clock ~cycles;
    st.stat.(b) <- tag_resident;
    Residency.Area.on_materialize st.area ~block:b ~step;
    Residency.Area.on_ready st.area ~block:b ~time:(now st);
    Packed.push_demand (chunk st) ~at:(now st) ~block:b ~cycles;
    patch_site st ~target:b ~site:prev

let execute st ~step ~cycles b =
  let s = st.stat.(b) in
  if s land 3 <> tag_resident then
    invalid_arg "Core.Engine.execute: block not resident";
  if s land bit_prefetched <> 0 && s land bit_used = 0 then
    st.useful_prefetches <- st.useful_prefetches + 1;
  st.stat.(b) <- s lor bit_used;
  Residency.Area.on_execute st.area ~block:b ~step ~time:(now st);
  Packed.push_exec (chunk st) ~at:(now st) ~block:b;
  charge_fast st Sim.Cost.Exec ~cycles
    ~energy_nj:(st.exec_nj_rate * cycles);
  Sim.Clock.advance st.clock ~cycles

(* Queue a pre-decompression of [c] on the decompression thread. *)
let issue_prefetch st ~step ~exclude c =
  if st.stat.(c) land 3 = tag_compressed then
    if make_room st ~exclude (st.u_size.(c)) then begin
      st.live_bytes <- st.live_bytes + st.u_size.(c);
      mem_event st ~time:(now st) ~delta:(st.u_size.(c));
      let ready_at =
        Sim.Clock.schedule st.dec ~now:(now st) ~cycles:(dec_time st c)
      in
      st.stat.(c) <- tag_decompressing lor bit_prefetched;
      st.aux.(c) <- ready_at;
      st.inflight <- insert_sorted st.inflight (ready_at, c);
      Residency.Area.on_materialize st.area ~block:c ~step;
      charge_fast st Sim.Cost.Prefetch_dec ~cycles:0
        ~energy_nj:st.prefetch_nj.(c);
      st.prefetch_decompressions <- st.prefetch_decompressions + 1;
      Packed.push_prefetch (chunk st) ~at:(now st) ~block:c ~ready_at
    end

(* Edge traversal from trace position [i] (block [b]) to [i+1]
   (block [next]): k-edge retirement, then pre-decompression. *)
let traverse_edge st ~b ~next ~step =
  settle st;
  (* k-edge: delete the copies whose counter reaches k, sparing the
     branch target (its counter resets on execution instead, §5). *)
  (match Residency.Area.due st.area ~step with
  | [] -> ()
  | due ->
    List.iter
      (fun d ->
        if d <> next then
          match st.stat.(d) land 3 with
          | 2 (* Resident *) -> delete_copy st ~eviction:false d
          | 1 (* Decompressing *) ->
            (* Still in flight: give it another k edges. *)
            Residency.Area.rearm st.area ~block:d ~step
          | _ -> ())
      due);
  (* Pre-decompression of blocks up to [lookahead] edges ahead. *)
  (match st.policy.Policy.strategy with
  | Policy.On_demand -> ()
  | Policy.Pre_all { lookahead } ->
    List.iter
      (fun (c, _dist) -> issue_prefetch st ~step ~exclude:[ b; next; c ] c)
      (Cfg.Dist.within st.graph ~from:b ~k:lookahead)
  | Policy.Pre_single { lookahead; predictor } -> (
    let candidates =
      Cfg.Dist.within st.graph ~from:b ~k:lookahead
      |> List.filter_map (fun (c, _) ->
             if st.stat.(c) land 3 = tag_compressed then Some c else None)
    in
    match
      Predictor.choose predictor st.pred_state st.graph ~from:b ~k:lookahead
        ~candidates
    with
    | Some c -> issue_prefetch st ~step ~exclude:[ b; next; c ] c
    | None -> ()));
  Predictor.note_edge st.pred_state ~src:b ~dst:next

(* --- fused fast path --- *)

(* Fused inner loop for the configuration that dominates sweeps and
   the streaming benchmarks: on-demand decompression, discard mode, no
   budget, plain constant-k k-edge retention, default per-visit cycles
   and no charge journal. Observation-for-observation equivalent to
   [arrive]/[execute]/[traverse_edge] — same packed events in the same
   order, same charge totals, same occupancy stream — with the
   per-step closures, queues and module hops fused away:

   - k-edge retirement needs no queue here: the only (re)tracks at
     step [i] are for the executed block [trace.(i)], so the one
     candidate due at step [s] is [trace.(s - k)], live iff its last
     track is still [s - k] (not re-executed, not released since).
   - charges accumulate in scalar counters and post to the cost
     accumulator once at the end; all integer arithmetic, so the
     batching is exact.
   - remember sets live in a flat blocks² byte matrix — membership is
     one load, releasing a block is one row fill (the LRU shadow is
     skipped: without a budget no victim is ever asked for).
   - the occupancy integral is maintained in scalar locals (same
     buffered smallest-first application of same-time deltas as
     [occ_feed]); the function returns the (peak, avg, byte-cycles)
     triple [memory_stats] would have produced.

   The equivalence is locked down by the property suite, which runs
   both paths over random graphs/traces and compares events, metrics
   and charge totals. *)
let run_fast st ~trace ~k len =
  let exc_cyc = st.exc_cyc and patch_cyc = st.patch_cyc in
  let stat = st.stat in
  let blocks = Array.length stat in
  let base = Array.make blocks (-1) in
  (* sbits.(b * blocks + s) <> '\000' iff site [s] patched into [b] *)
  let sbits = Bytes.make (blocks * blocks) '\000' in
  (* retq mirrors sbits' indexing: pairs that only a return reaches,
     which trap every visit and are never patched *)
  let retq = Bytes.make (blocks * blocks) '\000' in
  Array.iteri
    (fun t sites ->
      Array.iter
        (fun s -> Bytes.unsafe_set retq ((t * blocks) + s) '\001')
        sites)
    st.ret_sites;
  let scount = Array.make blocks 0 in
  let ev = st.ev in
  let u_size = st.u_size
  and dec_cyc_t = st.dec_cyc
  and demand_nj_t = st.demand_nj
  and def_cycles = st.def_cycles
  and succ_arr = st.succ_arr in
  let clk = ref 0 in
  let n_exc = ref 0
  and n_patch = ref 0
  and n_dem = ref 0
  and pb_total = ref 0
  and n_disc = ref 0 in
  let dem_cyc = ref 0 and dem_nj = ref 0 and exec_cyc = ref 0 in
  (* scalar occupancy accounting (see the header comment) *)
  let o_now = ref 0
  and o_level = ref 0
  and o_peak = ref 0
  and o_integral = ref 0 in
  let o_buf = ref (Array.make 8 0) in
  let o_len = ref 0 in
  let o_time = ref 0 in
  let o_flush () =
    let n = !o_len in
    if n > 0 then begin
      let a = !o_buf in
      for i = 1 to n - 1 do
        let x = Array.unsafe_get a i in
        occ_insert_back a (i - 1) x
      done;
      o_integral := !o_integral + (!o_level * (!o_time - !o_now));
      o_now := !o_time;
      for i = 0 to n - 1 do
        o_level := !o_level + Array.unsafe_get a i;
        if !o_level > !o_peak then o_peak := !o_level
      done;
      o_len := 0
    end
  in
  (* The post itself is inlined at both sites below; only the n = 1
     flush (the overwhelmingly common case — distinct timestamps) is
     special-cased there, everything else falls back to [o_flush]. *)
  let o_post_rare delta =
    let n = !o_len in
    if n = Array.length !o_buf then begin
      let grown = Array.make (2 * n) 0 in
      Array.blit !o_buf 0 grown 0 n;
      o_buf := grown
    end;
    Array.unsafe_set !o_buf n delta;
    o_len := n + 1
  in
  for i = 0 to len - 1 do
    let b = Array.unsafe_get trace i in
    let prev = if i = 0 then -1 else Array.unsafe_get trace (i - 1) in
    (* a step emits at most 5 events: reserve them all up front *)
    if Packed.room ev < 5 then emit_flush st;
    (* arrive *)
    (if Array.unsafe_get stat b = tag_resident then begin
       if prev >= 0 then begin
         let idx = (b * blocks) + prev in
         if Bytes.unsafe_get retq idx <> '\000' then begin
           incr n_exc;
           clk := !clk + exc_cyc;
           Packed.unsafe_push_ka ev ~kind:1 ~at:!clk ~a:b
         end
         else if Bytes.unsafe_get sbits idx = '\000' then begin
           Bytes.unsafe_set sbits idx '\001';
           Array.unsafe_set scount b (Array.unsafe_get scount b + 1);
           incr n_exc;
           clk := !clk + exc_cyc;
           Packed.unsafe_push_ka ev ~kind:1 ~at:!clk ~a:b;
           incr n_patch;
           clk := !clk + patch_cyc;
           Packed.unsafe_push_kab ev ~kind:5 ~at:!clk ~a:b ~b:prev
         end
       end
     end
     else begin
       (* compressed: exception, allocate, demand-decompress, patch *)
       incr n_exc;
       clk := !clk + exc_cyc;
       Packed.unsafe_push_ka ev ~kind:1 ~at:!clk ~a:b;
       (* occupancy post, inlined: [+u_size.(b)] at [!clk] *)
       (let delta = Array.unsafe_get u_size b in
        if !clk <> !o_time then begin
          (if !o_len = 1 then begin
             o_integral := !o_integral + (!o_level * (!o_time - !o_now));
             o_now := !o_time;
             o_level := !o_level + Array.unsafe_get !o_buf 0;
             if !o_level > !o_peak then o_peak := !o_level
           end
           else if !o_len > 1 then o_flush ());
          o_time := !clk;
          Array.unsafe_set !o_buf 0 delta;
          o_len := 1
        end
        else o_post_rare delta);
       let dc = Array.unsafe_get dec_cyc_t b in
       incr n_dem;
       dem_cyc := !dem_cyc + dc;
       dem_nj := !dem_nj + Array.unsafe_get demand_nj_t b;
       clk := !clk + dc;
       Array.unsafe_set stat b tag_resident;
       Array.unsafe_set base b i;
       Packed.unsafe_push_kab ev ~kind:2 ~at:!clk ~a:b ~b:dc;
       if prev >= 0 then begin
         let idx = (b * blocks) + prev in
         if
           Bytes.unsafe_get retq idx = '\000'
           && Bytes.unsafe_get sbits idx = '\000'
         then begin
           Bytes.unsafe_set sbits idx '\001';
           Array.unsafe_set scount b (Array.unsafe_get scount b + 1);
           incr n_patch;
           clk := !clk + patch_cyc;
           Packed.unsafe_push_kab ev ~kind:5 ~at:!clk ~a:b ~b:prev
         end
       end
     end);
    (* execute *)
    Array.unsafe_set base b i;
    Packed.unsafe_push_ka ev ~kind:0 ~at:!clk ~a:b;
    let cyc = Array.unsafe_get def_cycles b in
    exec_cyc := !exec_cyc + cyc;
    clk := !clk + cyc;
    (* traverse: the single possible k-edge retirement at step i+1 *)
    let s = i + 1 in
    if s < len && s >= k then begin
      let d = Array.unsafe_get trace (s - k) in
      if
        Array.unsafe_get base d = s - k
        && d <> Array.unsafe_get trace s
        && Array.unsafe_get stat d = tag_resident
      then begin
        let nsites = Array.unsafe_get scount d in
        Bytes.unsafe_fill sbits (d * blocks) blocks '\000';
        Array.unsafe_set scount d 0;
        Array.unsafe_set base d (-1);
        pb_total := !pb_total + nsites;
        Sim.Clock.push_back st.comp ~now:!clk ~cycles:(nsites * patch_cyc);
        (* branches inside [d] vanish with it *)
        let succs = Array.unsafe_get succ_arr d in
        for j = 0 to Array.length succs - 1 do
          let t = Array.unsafe_get succs j in
          let idx = (t * blocks) + d in
          if Bytes.unsafe_get sbits idx <> '\000' then begin
            Bytes.unsafe_set sbits idx '\000';
            Array.unsafe_set scount t (Array.unsafe_get scount t - 1)
          end
        done;
        (* occupancy post, inlined: [-u_size.(d)] at [!clk] *)
        (let delta = -Array.unsafe_get u_size d in
         if !clk <> !o_time then begin
           (if !o_len = 1 then begin
              o_integral := !o_integral + (!o_level * (!o_time - !o_now));
              o_now := !o_time;
              o_level := !o_level + Array.unsafe_get !o_buf 0;
              if !o_level > !o_peak then o_peak := !o_level
            end
            else if !o_len > 1 then o_flush ());
           o_time := !clk;
           Array.unsafe_set !o_buf 0 delta;
           o_len := 1
         end
         else o_post_rare delta);
        Array.unsafe_set stat d tag_compressed;
        incr n_disc;
        Packed.unsafe_push_kabc ev ~kind:7 ~at:!clk ~a:d ~b:nsites ~c:0
      end
    end
  done;
  (* post the batched charges and counters *)
  Sim.Clock.advance st.clock ~cycles:!clk;
  charge_fast st Sim.Cost.Exception ~cycles:(!n_exc * exc_cyc)
    ~energy_nj:(!n_exc * st.exc_nj);
  charge_fast st Sim.Cost.Patch ~cycles:(!n_patch * patch_cyc)
    ~energy_nj:(!n_patch * st.patch_nj);
  charge_fast st Sim.Cost.Patch_back ~cycles:0
    ~energy_nj:(!pb_total * st.patch_nj);
  charge_fast st Sim.Cost.Demand_dec ~cycles:!dem_cyc ~energy_nj:!dem_nj;
  charge_fast st Sim.Cost.Exec ~cycles:!exec_cyc
    ~energy_nj:(st.exec_nj_rate * !exec_cyc);
  st.exceptions <- !n_exc;
  st.patches <- !n_patch + !pb_total;
  st.demand_decompressions <- !n_dem;
  st.discards <- !n_disc;
  (* close the occupancy integral exactly as [memory_stats] would:
     every post is at or before the final clock, so the horizon is the
     final clock itself *)
  o_flush ();
  let until = max !clk 1 in
  let byte_cycles = !o_integral + (!o_level * (until - !o_now)) in
  let avg = float_of_int byte_cycles /. float_of_int until in
  (!o_peak, avg, byte_cycles)

let run ?(config = Config.default) ?log ?sink ?registry ?charge_log
    ?step_cycles ~graph ~info ~trace policy =
  let n = Cfg.Graph.num_blocks graph in
  if Array.length info <> n then
    invalid_arg "Core.Engine.run: info does not match graph";
  (match step_cycles with
  | Some sc when Array.length sc <> Array.length trace ->
    invalid_arg "Core.Engine.run: step_cycles does not match trace"
  | Some _ | None -> ());
  for i = 0 to Array.length trace - 1 do
    let b = Array.unsafe_get trace i in
    if b < 0 || b >= n then
      invalid_arg "Core.Engine.run: trace mentions unknown block"
  done;
  let deliver =
    match (log, sink) with
    | None, None -> fun _ -> ()
    | Some f, None -> fun ch -> Packed.iter f ch
    | None, Some (s : Sim.Events.sink) -> s.Sim.Events.emit_chunk
    | Some f, Some s ->
      fun ch ->
        Packed.iter f ch;
        s.Sim.Events.emit_chunk ch
  in
  let acc = Sim.Cost.Acc.create ?journal:charge_log () in
  let retention =
    Residency.Policy.instantiate policy.Policy.retention
      {
        Residency.Policy.blocks = n;
        k = policy.Policy.compress_k;
        k_of = policy.Policy.adaptive_k;
        graph = Some graph;
        budget = policy.Policy.budget;
        size_of = Some (fun b -> info.(b).uncompressed_bytes);
        totals = Some (fun () -> Sim.Cost.Acc.dimension_totals acc);
      }
  in
  let costs = config.Config.costs in
  let st =
    {
      graph;
      info;
      policy;
      config;
      ev = Packed.create ();
      deliver;
      stat = Array.make n tag_compressed;
      aux = Array.make n 0;
      area =
        Residency.Area.create ~policy:retention ~blocks:n ~site_key:Fun.id ();
      pred_state = Predictor.create_state ~blocks:n;
      clock = Sim.Clock.create ();
      dec = Sim.Clock.resource ();
      comp = Sim.Clock.resource ();
      occ =
        {
          acct = Memsim.Accounting.create ();
          future = [];
          buf_time = 0;
          buf = Array.make 64 0;
          buf_len = 0;
          horizon = 0;
        };
      live_bytes = 0;
      inflight = [];
      pending_frees = [];
      acc;
      u_size = Array.map (fun i -> i.uncompressed_bytes) info;
      def_cycles = Array.map (fun i -> i.exec_cycles) info;
      dec_cyc =
        Array.map
          (fun i -> Config.dec_cycles config ~compressed_bytes:i.compressed_bytes)
          info;
      comp_cyc =
        Array.map
          (fun i ->
            Config.comp_cycles config ~uncompressed_bytes:i.uncompressed_bytes)
          info;
      demand_nj =
        Array.map
          (fun i ->
            (Sim.Cost.demand_dec_charge costs
               ~compressed_bytes:i.compressed_bytes
               ~uncompressed_bytes:i.uncompressed_bytes)
              .Sim.Cost.energy_nj)
          info;
      prefetch_nj =
        Array.map
          (fun i ->
            (Sim.Cost.prefetch_dec_charge costs
               ~compressed_bytes:i.compressed_bytes
               ~uncompressed_bytes:i.uncompressed_bytes)
              .Sim.Cost.energy_nj)
          info;
      recompress_nj =
        Array.map
          (fun i ->
            (Sim.Cost.recompress_charge costs
               ~uncompressed_bytes:i.uncompressed_bytes)
              .Sim.Cost.energy_nj)
          info;
      succ_arr =
        Array.init n (fun i -> Array.of_list (Cfg.Graph.succ_ids graph i));
      ret_sites =
        (let ret = Array.make n [] and other = Array.make n [] in
         List.iter
           (fun (s, t, k) ->
             match k with
             | Cfg.Graph.Return -> ret.(t) <- s :: ret.(t)
             | Cfg.Graph.Fallthrough | Cfg.Graph.Taken | Cfg.Graph.Call ->
               other.(t) <- s :: other.(t))
           (Cfg.Graph.edges graph);
         Array.init n (fun t ->
             Array.of_list
               (List.filter (fun s -> not (List.mem s other.(t))) ret.(t))));
      exc_cyc = (Sim.Cost.exception_charge costs).Sim.Cost.cycles;
      exc_nj = (Sim.Cost.exception_charge costs).Sim.Cost.energy_nj;
      patch_cyc = (Sim.Cost.patch_charge costs).Sim.Cost.cycles;
      patch_nj = (Sim.Cost.patch_charge costs).Sim.Cost.energy_nj;
      exec_nj_rate = costs.Sim.Cost.energy.Sim.Cost.exec_nj_per_cycle;
      exceptions = 0;
      patches = 0;
      demand_decompressions = 0;
      prefetch_decompressions = 0;
      useful_prefetches = 0;
      wasted_prefetches = 0;
      discards = 0;
      evictions = 0;
      budget_overflows = 0;
    }
  in
  let len = Array.length trace in
  let sc = match step_cycles with Some a -> a | None -> [||] in
  let use_sc = step_cycles <> None in
  let fast_ok =
    (not use_sc)
    && (match charge_log with None -> true | Some _ -> false)
    && (match policy.Policy.strategy with
       | Policy.On_demand -> true
       | Policy.Pre_all _ | Policy.Pre_single _ -> false)
    && policy.Policy.mode = Policy.Discard
    && (match policy.Policy.budget with None -> true | Some _ -> false)
    && (match policy.Policy.adaptive_k with None -> true | Some _ -> false)
    && (match policy.Policy.retention with
       | Residency.Policy.Kedge -> true
       | _ -> false)
    (* the fast path keeps remember sets in a blocks² byte matrix *)
    && Array.length st.stat <= 1024
  in
  let fast_stats =
    if fast_ok then Some (run_fast st ~trace ~k:policy.Policy.compress_k len)
    else begin
      for i = 0 to len - 1 do
        let b = Array.unsafe_get trace i in
        let prev = if i = 0 then -1 else Array.unsafe_get trace (i - 1) in
        arrive st ~step:i ~prev b;
        let cycles =
          if use_sc then Array.unsafe_get sc i else st.def_cycles.(b)
        in
        execute st ~step:i ~cycles b;
        if i + 1 < len then
          traverse_edge st ~b ~next:(Array.unsafe_get trace (i + 1))
            ~step:(i + 1)
      done;
      None
    end
  in
  emit_flush st;
  let peak_dec, avg_dec, dec_byte_cycles =
    match fast_stats with Some s -> s | None -> memory_stats st
  in
  (* The decompressed copy area leaked for the whole run: one final
     charge, priced on the exact occupancy integral. *)
  Sim.Cost.Acc.charge acc Sim.Cost.Ram_static
    (Sim.Cost.ram_static_charge config.Config.costs
       ~byte_cycles:dec_byte_cycles);
  let original_bytes =
    Array.fold_left (fun acc b -> acc + b.uncompressed_bytes) 0 info
  in
  let compressed_area_bytes =
    Array.fold_left (fun acc b -> acc + b.compressed_bytes) 0 info
  in
  let baseline_cycles =
    let sum = ref 0 in
    if use_sc then
      for i = 0 to len - 1 do
        sum := !sum + Array.unsafe_get sc i
      done
    else
      for i = 0 to len - 1 do
        sum := !sum + st.def_cycles.(Array.unsafe_get trace i)
      done;
    !sum
  in
  let cycles_of src = (Sim.Cost.Acc.total_of acc src).Sim.Cost.cycles in
  let energy_of src = (Sim.Cost.Acc.total_of acc src).Sim.Cost.energy_nj in
  let m =
    {
      Metrics.total_cycles = now st;
      exec_cycles = cycles_of Sim.Cost.Exec;
      exception_cycles = cycles_of Sim.Cost.Exception;
      patch_cycles = cycles_of Sim.Cost.Patch;
      demand_dec_cycles = cycles_of Sim.Cost.Demand_dec;
      stall_cycles = cycles_of Sim.Cost.Stall;
      baseline_cycles;
      exceptions = st.exceptions;
      patches = st.patches;
      demand_decompressions = st.demand_decompressions;
      prefetch_decompressions = st.prefetch_decompressions;
      useful_prefetches = st.useful_prefetches;
      wasted_prefetches = st.wasted_prefetches;
      discards = st.discards;
      evictions = st.evictions;
      budget_overflows = st.budget_overflows;
      dec_thread_busy_cycles = Sim.Clock.busy_cycles st.dec;
      comp_thread_busy_cycles = Sim.Clock.busy_cycles st.comp;
      energy_nj = (Sim.Cost.Acc.total acc).Sim.Cost.energy_nj;
      exec_energy_nj = energy_of Sim.Cost.Exec;
      exception_energy_nj = energy_of Sim.Cost.Exception;
      patch_energy_nj =
        energy_of Sim.Cost.Patch + energy_of Sim.Cost.Patch_back;
      dec_energy_nj =
        energy_of Sim.Cost.Demand_dec + energy_of Sim.Cost.Prefetch_dec;
      comp_energy_nj = energy_of Sim.Cost.Recompress;
      ram_static_energy_nj = energy_of Sim.Cost.Ram_static;
      baseline_energy_nj =
        config.Config.costs.Sim.Cost.energy.Sim.Cost.exec_nj_per_cycle
        * baseline_cycles;
      original_bytes;
      compressed_area_bytes;
      peak_decompressed_bytes = peak_dec;
      avg_decompressed_bytes = avg_dec;
      peak_footprint_bytes = compressed_area_bytes + peak_dec;
      avg_footprint_bytes = float_of_int compressed_area_bytes +. avg_dec;
      trace_length = len;
      blocks = n;
    }
  in
  (match registry with
  | Some registry -> Metrics.register registry m
  | None -> ());
  m
