type block_info = {
  exec_cycles : int;
  uncompressed_bytes : int;
  compressed_bytes : int;
}

let info_of_graph ?(ratio = 0.6) g =
  Array.map
    (fun (b : Cfg.Graph.block) ->
      {
        exec_cycles = b.exec_cycles;
        uncompressed_bytes = b.byte_size;
        compressed_bytes =
          max 1 (int_of_float (ratio *. float_of_int b.byte_size));
      })
    (Cfg.Graph.blocks g)

let info_of_program ~codec prog g =
  Array.map
    (fun (b : Cfg.Graph.block) ->
      let bytes =
        Eris.Program.slice_bytes prog ~lo:b.addr ~hi:(b.addr + b.byte_size)
      in
      {
        exec_cycles = b.exec_cycles;
        uncompressed_bytes = b.byte_size;
        compressed_bytes = Bytes.length (codec.Compress.Codec.compress bytes);
      })
    (Cfg.Graph.blocks g)

(* The engine speaks the shared simulation vocabulary; the re-export
   keeps the historical [Core.Engine.Exec]-style paths valid. *)
type event = Sim.Events.t =
  | Exec of { block : int; at : int }
  | Exception of { block : int; at : int }
  | Demand_decompress of { block : int; at : int; cycles : int }
  | Prefetch_issue of { block : int; at : int; ready_at : int }
  | Stall of { block : int; at : int; cycles : int }
  | Patch of { target : int; site : int; at : int }
  | Unpatch of { target : int; site : int; at : int }
  | Discard of { block : int; at : int; patched_back : int; wasted : bool }
  | Evict of { block : int; at : int }
  | Recompress_queued of { block : int; at : int; done_at : int }
  | Flush of { at : int; copies : int }

(* Residency state of one block's decompressed copy. *)
type status =
  | Compressed
  | Decompressing of { ready_at : int; prefetched : bool }
  | Resident of { mutable used : bool; prefetched : bool }
  | Recompressing of { done_at : int }

(* Streaming occupancy accounting: deltas arrive in nondecreasing
   timestamp order except for recompression frees dated in the future;
   those wait in [future] (bounded by the in-flight recompressions,
   not the trace). Same-timestamp deltas are buffered and applied
   smallest-first, reproducing exactly the global (time, delta) sort
   the engine used to perform over the whole O(trace) event list. *)
type occupancy = {
  acct : Memsim.Accounting.t;
  mutable future : (int * int) list;  (* (time, delta), sorted *)
  mutable buf_time : int;
  mutable buf : int list;  (* deltas at [buf_time], unordered *)
  mutable horizon : int;  (* latest timestamp ever posted *)
}

type state = {
  graph : Cfg.Graph.t;
  info : block_info array;
  policy : Policy.t;
  config : Config.t;
  emit : event -> unit;
  status : status array;
  area : int Residency.Area.t;
      (* copy lifecycle: retention policy + remember sets; sites are
         the branching block's id *)
  pred_state : Predictor.state;
  clock : Sim.Clock.t;
  dec : Sim.Clock.resource;  (* decompression thread *)
  comp : Sim.Clock.resource;  (* compression thread *)
  occ : occupancy;
  mutable live_bytes : int;  (* decompressed area, settled view *)
  mutable inflight : (int * int) list;  (* (ready_at, block), sorted *)
  mutable pending_frees : (int * int) list;  (* (time, bytes), sorted *)
  (* every priced event lands here as one charge vector; the metrics'
     per-source cycle and energy totals are read back out at the end *)
  acc : Sim.Cost.Acc.acc;
  (* counters *)
  mutable exceptions : int;
  mutable patches : int;
  mutable demand_decompressions : int;
  mutable prefetch_decompressions : int;
  mutable useful_prefetches : int;
  mutable wasted_prefetches : int;
  mutable discards : int;
  mutable evictions : int;
  mutable budget_overflows : int;
}

let insert_sorted l entry = List.sort compare (entry :: l)
let now st = Sim.Clock.now st.clock

(* --- occupancy stream --- *)

let occ_flush_buf occ =
  List.iter
    (fun delta -> Memsim.Accounting.add occ.acct ~time:occ.buf_time ~delta)
    (List.sort compare occ.buf);
  occ.buf <- []

let occ_feed occ ~time ~delta =
  if time <> occ.buf_time then begin
    occ_flush_buf occ;
    occ.buf_time <- time
  end;
  occ.buf <- delta :: occ.buf

let rec occ_drain occ ~upto =
  match occ.future with
  | (time, delta) :: rest when time <= upto ->
    occ.future <- rest;
    occ_feed occ ~time ~delta;
    occ_drain occ ~upto
  | _ :: _ | [] -> ()

let mem_event st ~time ~delta =
  let occ = st.occ in
  if time > occ.horizon then occ.horizon <- time;
  if time > now st then occ.future <- insert_sorted occ.future (time, delta)
  else begin
    occ_drain occ ~upto:time;
    occ_feed occ ~time ~delta
  end

(* Final accounting: flush everything still queued and return the
   time-weighted occupancy of the decompressed area — peak, average,
   and the raw byte-cycles integral (the RAM leakage base). *)
let memory_stats st =
  let occ = st.occ in
  occ_drain occ ~upto:max_int;
  occ_flush_buf occ;
  let end_time = max (now st) occ.horizon in
  let until = max end_time 1 in
  let peak = Memsim.Accounting.peak occ.acct in
  let byte_cycles = Memsim.Accounting.integral occ.acct ~until in
  let avg = float_of_int byte_cycles /. float_of_int until in
  (peak, avg, byte_cycles)

(* Promote finished prefetches and apply recompression frees whose
   time has passed. *)
let settle st =
  let rec promote = function
    | (ready_at, b) :: rest when ready_at <= now st ->
      (match st.status.(b) with
      | Decompressing { prefetched; _ } ->
        st.status.(b) <- Resident { used = false; prefetched };
        Residency.Area.on_ready st.area ~block:b ~time:ready_at
      | Compressed | Resident _ | Recompressing _ -> ());
      promote rest
    | rest -> rest
  in
  st.inflight <- promote st.inflight;
  let rec apply = function
    | (time, bytes) :: rest when time <= now st ->
      st.live_bytes <- st.live_bytes - bytes;
      apply rest
    | rest -> rest
  in
  st.pending_frees <- apply st.pending_frees

let usize st b = st.info.(b).uncompressed_bytes
let csize st b = st.info.(b).compressed_bytes

let dec_time st b = Config.dec_cycles st.config ~compressed_bytes:(csize st b)

let comp_time st b =
  Config.comp_cycles st.config ~uncompressed_bytes:(usize st b)

(* Deletes the decompressed copy of [b] (k-edge retirement or LRU
   eviction). Patch-backs run on the compression thread. *)
let delete_copy st ~eviction b =
  let wasted =
    match st.status.(b) with
    | Resident { used; prefetched } -> prefetched && not used
    | Compressed | Decompressing _ | Recompressing _ ->
      invalid_arg "Core.Engine.delete_copy: block not resident"
  in
  if wasted then st.wasted_prefetches <- st.wasted_prefetches + 1;
  (* [release] flushes the remember set and retires the retention
     state; the engine only models patch-back timing, so every site
     "patches back" successfully. Events are emitted below, engine-side,
     to keep Recompress_queued ahead of Discard/Evict in the stream. *)
  let patched_back =
    Residency.Area.release st.area ~block:b ~patch_back:(fun _ -> true)
  in
  st.patches <- st.patches + patched_back;
  Sim.Cost.Acc.charge st.acc Sim.Cost.Patch_back
    (Sim.Cost.patch_back_charge st.config.Config.costs ~sites:patched_back);
  Sim.Clock.push_back st.comp ~now:(now st)
    ~cycles:(patched_back * st.config.Config.costs.patch_cycles);
  (* Branches inside [b] vanish with it: drop them from the remember
     sets of their targets. *)
  List.iter
    (fun s ->
      ignore
        (Residency.Area.forget_sites st.area ~target:s ~where:(fun site ->
             site = b)))
    (Cfg.Graph.succ_ids st.graph b);
  (match st.policy.Policy.mode with
  | Policy.Discard ->
    st.live_bytes <- st.live_bytes - usize st b;
    mem_event st ~time:(now st) ~delta:(-usize st b);
    st.status.(b) <- Compressed
  | Policy.Recompress ->
    Sim.Cost.Acc.charge st.acc Sim.Cost.Recompress
      (Sim.Cost.recompress_charge st.config.Config.costs
         ~uncompressed_bytes:(usize st b));
    let done_at =
      Sim.Clock.schedule st.comp ~now:(now st) ~cycles:(comp_time st b)
    in
    st.pending_frees <- insert_sorted st.pending_frees (done_at, usize st b);
    mem_event st ~time:done_at ~delta:(-usize st b);
    st.status.(b) <- Recompressing { done_at };
    st.emit (Recompress_queued { block = b; at = now st; done_at }));
  if eviction then begin
    st.evictions <- st.evictions + 1;
    st.emit (Evict { block = b; at = now st })
  end
  else begin
    st.discards <- st.discards + 1;
    st.emit (Discard { block = b; at = now st; patched_back; wasted })
  end

(* Ensures [bytes] fit under the budget, evicting LRU residents.
   Returns false if the space cannot be freed. *)
let make_room st ~exclude bytes =
  match st.policy.Policy.budget with
  | None -> true
  | Some cap ->
    settle st;
    let excluded v =
      List.mem v exclude
      ||
      match st.status.(v) with
      | Resident _ -> false
      | Compressed | Decompressing _ | Recompressing _ -> true
    in
    let rec evict () =
      if st.live_bytes + bytes <= cap then true
      else
        match Residency.Area.victim st.area ~exclude:excluded with
        | Some v ->
          delete_copy st ~eviction:true v;
          evict ()
        | None -> false
    in
    evict ()

(* Allocates space for a decompressed copy of [b]. *)
let allocate st ~exclude b =
  let ok = make_room st ~exclude (usize st b) in
  if not ok then st.budget_overflows <- st.budget_overflows + 1;
  st.live_bytes <- st.live_bytes + usize st b;
  mem_event st ~time:(now st) ~delta:(usize st b)

let charge_exception st b =
  st.exceptions <- st.exceptions + 1;
  let v = Sim.Cost.exception_charge st.config.Config.costs in
  Sim.Cost.Acc.charge st.acc Sim.Cost.Exception v;
  Sim.Clock.advance st.clock ~cycles:v.Sim.Cost.cycles;
  st.emit (Exception { block = b; at = now st })

let charge_patch st ~target ~site =
  st.patches <- st.patches + 1;
  let v = Sim.Cost.patch_charge st.config.Config.costs in
  Sim.Cost.Acc.charge st.acc Sim.Cost.Patch v;
  Sim.Clock.advance st.clock ~cycles:v.Sim.Cost.cycles;
  st.emit (Patch { target; site; at = now st })

(* Records the branch site and charges the patch if it is new. The
   caller has already paid the exception. *)
let patch_site st ~target ~site =
  match site with
  | None -> ()
  | Some site ->
    if Residency.Area.record_site st.area ~target ~site then
      charge_patch st ~target ~site

let stall_until st b t =
  let w = Sim.Clock.wait_until st.clock t in
  if w > 0 then begin
    Sim.Cost.Acc.charge st.acc Sim.Cost.Stall
      (Sim.Cost.stall_charge st.config.Config.costs ~cycles:w);
    st.emit (Stall { block = b; at = now st; cycles = w })
  end

(* The execution thread arrives at block [b], coming from [prev], at
   trace position [step]. *)
let rec arrive st ~step ~prev b =
  settle st;
  match st.status.(b) with
  | Resident _ -> (
    (* No cost when the branch already targets the decompressed copy;
       otherwise the exception fires and the handler patches (Fig. 5,
       steps 5-6). The initial entry (no prev) faults too but has no
       site to patch. *)
    match prev with
    | Some site ->
      if not (Residency.Area.record_site st.area ~target:b ~site) then ()
      else begin
        charge_exception st b;
        charge_patch st ~target:b ~site
      end
    | None -> charge_exception st b)
  | Decompressing { ready_at; prefetched } ->
    (* The branch still points into the compressed area: exception,
       then wait for the in-flight pre-decompression. *)
    charge_exception st b;
    stall_until st b ready_at;
    st.inflight <- List.filter (fun (_, blk) -> blk <> b) st.inflight;
    st.status.(b) <- Resident { used = false; prefetched };
    Residency.Area.on_ready st.area ~block:b ~time:(now st);
    patch_site st ~target:b ~site:prev
  | Recompressing { done_at } ->
    (* Rare: reached while the compression thread still owns it. Wait
       out the compression, then take the demand path. *)
    stall_until st b done_at;
    settle st;
    st.status.(b) <- Compressed;
    arrive st ~step ~prev b
  | Compressed ->
    charge_exception st b;
    allocate st ~exclude:[ b ] b;
    let v =
      Sim.Cost.demand_dec_charge st.config.Config.costs
        ~compressed_bytes:(csize st b) ~uncompressed_bytes:(usize st b)
    in
    let cycles = v.Sim.Cost.cycles in
    st.demand_decompressions <- st.demand_decompressions + 1;
    Sim.Cost.Acc.charge st.acc Sim.Cost.Demand_dec v;
    Sim.Clock.advance st.clock ~cycles;
    st.status.(b) <- Resident { used = false; prefetched = false };
    Residency.Area.on_materialize st.area ~block:b ~step;
    Residency.Area.on_ready st.area ~block:b ~time:(now st);
    st.emit (Demand_decompress { block = b; at = now st; cycles });
    patch_site st ~target:b ~site:prev

let execute st ~step ~cycles b =
  (match st.status.(b) with
  | Resident r ->
    if r.prefetched && not r.used then
      st.useful_prefetches <- st.useful_prefetches + 1;
    r.used <- true
  | Compressed | Decompressing _ | Recompressing _ ->
    invalid_arg "Core.Engine.execute: block not resident");
  Residency.Area.on_execute st.area ~block:b ~step ~time:(now st);
  st.emit (Exec { block = b; at = now st });
  Sim.Cost.Acc.charge st.acc Sim.Cost.Exec
    (Sim.Cost.exec_charge st.config.Config.costs ~cycles);
  Sim.Clock.advance st.clock ~cycles

(* Queue a pre-decompression of [c] on the decompression thread. *)
let issue_prefetch st ~step ~exclude c =
  match st.status.(c) with
  | Compressed ->
    if make_room st ~exclude (usize st c) then begin
      st.live_bytes <- st.live_bytes + usize st c;
      mem_event st ~time:(now st) ~delta:(usize st c);
      let ready_at =
        Sim.Clock.schedule st.dec ~now:(now st) ~cycles:(dec_time st c)
      in
      st.status.(c) <- Decompressing { ready_at; prefetched = true };
      st.inflight <- insert_sorted st.inflight (ready_at, c);
      Residency.Area.on_materialize st.area ~block:c ~step;
      Sim.Cost.Acc.charge st.acc Sim.Cost.Prefetch_dec
        (Sim.Cost.prefetch_dec_charge st.config.Config.costs
           ~compressed_bytes:(csize st c) ~uncompressed_bytes:(usize st c));
      st.prefetch_decompressions <- st.prefetch_decompressions + 1;
      st.emit (Prefetch_issue { block = c; at = now st; ready_at })
    end
  | Resident _ | Decompressing _ | Recompressing _ -> ()

(* Edge traversal from trace position [i] (block [b]) to [i+1]
   (block [next]): k-edge retirement, then pre-decompression. *)
let traverse_edge st ~b ~next ~step =
  settle st;
  (* k-edge: delete the copies whose counter reaches k, sparing the
     branch target (its counter resets on execution instead, §5). *)
  List.iter
    (fun d ->
      if d <> next then
        match st.status.(d) with
        | Resident _ -> delete_copy st ~eviction:false d
        | Decompressing _ ->
          (* Still in flight: give it another k edges. *)
          Residency.Area.rearm st.area ~block:d ~step
        | Compressed | Recompressing _ -> ())
    (Residency.Area.due st.area ~step);
  (* Pre-decompression of blocks up to [lookahead] edges ahead. *)
  (match st.policy.Policy.strategy with
  | Policy.On_demand -> ()
  | Policy.Pre_all { lookahead } ->
    List.iter
      (fun (c, _dist) -> issue_prefetch st ~step ~exclude:[ b; next; c ] c)
      (Cfg.Dist.within st.graph ~from:b ~k:lookahead)
  | Policy.Pre_single { lookahead; predictor } -> (
    let candidates =
      Cfg.Dist.within st.graph ~from:b ~k:lookahead
      |> List.filter_map (fun (c, _) ->
             match st.status.(c) with
             | Compressed -> Some c
             | Resident _ | Decompressing _ | Recompressing _ -> None)
    in
    match
      Predictor.choose predictor st.pred_state st.graph ~from:b ~k:lookahead
        ~candidates
    with
    | Some c -> issue_prefetch st ~step ~exclude:[ b; next; c ] c
    | None -> ()));
  Predictor.note_edge st.pred_state ~src:b ~dst:next

let run ?(config = Config.default) ?log ?sink ?registry ?charge_log
    ?step_cycles ~graph ~info ~trace policy =
  let n = Cfg.Graph.num_blocks graph in
  if Array.length info <> n then
    invalid_arg "Core.Engine.run: info does not match graph";
  (match step_cycles with
  | Some sc when Array.length sc <> Array.length trace ->
    invalid_arg "Core.Engine.run: step_cycles does not match trace"
  | Some _ | None -> ());
  Array.iter
    (fun b ->
      if b < 0 || b >= n then
        invalid_arg "Core.Engine.run: trace mentions unknown block")
    trace;
  let emit =
    match (log, sink) with
    | None, None -> fun _ -> ()
    | Some f, None -> f
    | None, Some (s : Sim.Events.sink) -> s.Sim.Events.emit
    | Some f, Some s ->
      fun ev ->
        f ev;
        s.Sim.Events.emit ev
  in
  let acc = Sim.Cost.Acc.create ?journal:charge_log () in
  let retention =
    Residency.Policy.instantiate policy.Policy.retention
      {
        Residency.Policy.blocks = n;
        k = policy.Policy.compress_k;
        k_of = policy.Policy.adaptive_k;
        graph = Some graph;
        budget = policy.Policy.budget;
        size_of = Some (fun b -> info.(b).uncompressed_bytes);
        totals = Some (fun () -> Sim.Cost.Acc.dimension_totals acc);
      }
  in
  let st =
    {
      graph;
      info;
      policy;
      config;
      emit;
      status = Array.make n Compressed;
      area =
        Residency.Area.create ~policy:retention ~blocks:n ~site_key:Fun.id ();
      pred_state = Predictor.create_state ~blocks:n;
      clock = Sim.Clock.create ();
      dec = Sim.Clock.resource ();
      comp = Sim.Clock.resource ();
      occ =
        {
          acct = Memsim.Accounting.create ();
          future = [];
          buf_time = 0;
          buf = [];
          horizon = 0;
        };
      live_bytes = 0;
      inflight = [];
      pending_frees = [];
      acc;
      exceptions = 0;
      patches = 0;
      demand_decompressions = 0;
      prefetch_decompressions = 0;
      useful_prefetches = 0;
      wasted_prefetches = 0;
      discards = 0;
      evictions = 0;
      budget_overflows = 0;
    }
  in
  let cycles_at i b =
    match step_cycles with
    | Some sc -> sc.(i)
    | None -> info.(b).exec_cycles
  in
  let len = Array.length trace in
  for i = 0 to len - 1 do
    let b = trace.(i) in
    let prev = if i = 0 then None else Some trace.(i - 1) in
    arrive st ~step:i ~prev b;
    execute st ~step:i ~cycles:(cycles_at i b) b;
    if i + 1 < len then traverse_edge st ~b ~next:trace.(i + 1) ~step:(i + 1)
  done;
  let peak_dec, avg_dec, dec_byte_cycles = memory_stats st in
  (* The decompressed copy area leaked for the whole run: one final
     charge, priced on the exact occupancy integral. *)
  Sim.Cost.Acc.charge acc Sim.Cost.Ram_static
    (Sim.Cost.ram_static_charge config.Config.costs
       ~byte_cycles:dec_byte_cycles);
  let original_bytes =
    Array.fold_left (fun acc b -> acc + b.uncompressed_bytes) 0 info
  in
  let compressed_area_bytes =
    Array.fold_left (fun acc b -> acc + b.compressed_bytes) 0 info
  in
  let baseline_cycles =
    let sum = ref 0 in
    Array.iteri (fun i b -> sum := !sum + cycles_at i b) trace;
    !sum
  in
  let cycles_of src = (Sim.Cost.Acc.total_of acc src).Sim.Cost.cycles in
  let energy_of src = (Sim.Cost.Acc.total_of acc src).Sim.Cost.energy_nj in
  let m =
    {
      Metrics.total_cycles = now st;
      exec_cycles = cycles_of Sim.Cost.Exec;
      exception_cycles = cycles_of Sim.Cost.Exception;
      patch_cycles = cycles_of Sim.Cost.Patch;
      demand_dec_cycles = cycles_of Sim.Cost.Demand_dec;
      stall_cycles = cycles_of Sim.Cost.Stall;
      baseline_cycles;
      exceptions = st.exceptions;
      patches = st.patches;
      demand_decompressions = st.demand_decompressions;
      prefetch_decompressions = st.prefetch_decompressions;
      useful_prefetches = st.useful_prefetches;
      wasted_prefetches = st.wasted_prefetches;
      discards = st.discards;
      evictions = st.evictions;
      budget_overflows = st.budget_overflows;
      dec_thread_busy_cycles = Sim.Clock.busy_cycles st.dec;
      comp_thread_busy_cycles = Sim.Clock.busy_cycles st.comp;
      energy_nj = (Sim.Cost.Acc.total acc).Sim.Cost.energy_nj;
      exec_energy_nj = energy_of Sim.Cost.Exec;
      exception_energy_nj = energy_of Sim.Cost.Exception;
      patch_energy_nj =
        energy_of Sim.Cost.Patch + energy_of Sim.Cost.Patch_back;
      dec_energy_nj =
        energy_of Sim.Cost.Demand_dec + energy_of Sim.Cost.Prefetch_dec;
      comp_energy_nj = energy_of Sim.Cost.Recompress;
      ram_static_energy_nj = energy_of Sim.Cost.Ram_static;
      baseline_energy_nj =
        config.Config.costs.Sim.Cost.energy.Sim.Cost.exec_nj_per_cycle
        * baseline_cycles;
      original_bytes;
      compressed_area_bytes;
      peak_decompressed_bytes = peak_dec;
      avg_decompressed_bytes = avg_dec;
      peak_footprint_bytes = compressed_area_bytes + peak_dec;
      avg_footprint_bytes = float_of_int compressed_area_bytes +. avg_dec;
      trace_length = len;
      blocks = n;
    }
  in
  (match registry with
  | Some registry -> Metrics.register registry m
  | None -> ());
  m
