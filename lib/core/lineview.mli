(** Line-granular view of a scenario: a compressed instruction cache.

    The paper's engine treats the basic block as the unit of
    decompression and retention. A hardware compressed I-cache works
    on fixed-size lines instead: a miss decompresses one line, and
    eviction (k-edge, clock, LRU) applies per line. This module
    re-expresses any {!Scenario.t} at line granularity and runs the
    unmodified engine over it — lines become the engine's "blocks", so
    every retention policy, strategy, budget, and the whole cost and
    event vocabulary apply per line with no engine changes.

    The projection (mirroring [Baselines.Granularity], which coarsens
    where this refines):
    - {!Residency.Linemap} gives the line geometry — ids, extents and
      the block -> lines spans;
    - per-line info holds the real line bytes' compressed size: exact
      tag-inclusive wire bits for the {!Compress.Linecodec} family,
      the codec's framed output for block codecs (their per-line
      framing overhead is then charged honestly);
    - the block trace expands to the line trace (each visit touches
      the block's lines in address order) with the visit's cycles
      split across lines via [step_cycles], so total execution cost
      is preserved exactly. *)

type view = {
  graph : Cfg.Graph.t;  (** synthetic graph with one node per line *)
  info : Engine.block_info array;
  trace : int array;
  step_cycles : int array;
  map : Residency.Linemap.t;
}

val default_line_size : int
(** 32 bytes. *)

val image_of : Scenario.t -> bytes
(** The scenario's byte image: the program image, or for synthetic
    scenarios the blocks' pseudo-code bytes laid out at their
    addresses. *)

val line_compressed_bytes :
  codec:Compress.Codec.t -> image:bytes -> Residency.Linemap.t -> int array
(** Per-line compressed size: [ceil (cost_bits / 8)] (tag included)
    for line codecs, [compress]'s framed output size for block
    codecs; at least 1. Shared with the executable runtime's per-line
    accounting. *)

val view : ?line_size:int -> Scenario.t -> view
(** @raise Invalid_argument if [line_size < 4]. *)

val run :
  ?config:Config.t ->
  ?profile:string ->
  ?sink:Sim.Events.sink ->
  ?registry:Sim.Metrics.t ->
  ?line_size:int ->
  Scenario.t ->
  Policy.t ->
  Metrics.t
(** Runs the policy engine at line granularity. Config resolution as
    in {!Scenario.run}: explicit [config] wins, else the scenario
    codec's rates under [profile]. *)
