type compression_mode = Discard | Recompress

type decompression_strategy =
  | On_demand
  | Pre_all of { lookahead : int }
  | Pre_single of { lookahead : int; predictor : Predictor.t }

type t = {
  compress_k : int;
  adaptive_k : (int -> int) option;
  mode : compression_mode;
  strategy : decompression_strategy;
  budget : int option;
  retention : Residency.Policy.spec;
}

let validate t =
  if t.compress_k < 1 then invalid_arg "Core.Policy: compress_k must be >= 1";
  (match t.strategy with
  | On_demand -> ()
  | Pre_all { lookahead } | Pre_single { lookahead; _ } ->
    if lookahead < 1 then invalid_arg "Core.Policy: lookahead must be >= 1");
  (match t.retention with
  | Residency.Policy.Loop_aware { weight } ->
    if weight < 1 then
      invalid_arg "Core.Policy: loop-aware retention weight must be >= 1"
  | Residency.Policy.Pin_hot { pinned } ->
    if List.exists (fun b -> b < 0) pinned then
      invalid_arg "Core.Policy: pinned blocks must be >= 0"
  | Residency.Policy.Kedge | Residency.Policy.Clock -> ());
  match t.budget with
  | Some b when b <= 0 -> invalid_arg "Core.Policy: budget must be positive"
  | Some _ | None -> ()

let make ?(mode = Discard) ?(strategy = On_demand) ?budget ?adaptive_k
    ?(retention = Residency.Policy.Kedge) ~compress_k () =
  let t = { compress_k; adaptive_k; mode; strategy; budget; retention } in
  validate t;
  t

let on_demand ~k = make ~compress_k:k ()
let pre_all ~k ~lookahead = make ~compress_k:k ~strategy:(Pre_all { lookahead }) ()

let pre_single ~k ~lookahead ~predictor =
  make ~compress_k:k ~strategy:(Pre_single { lookahead; predictor }) ()

let never_compress = make ~compress_k:max_int ()

let describe t =
  let strategy =
    match t.strategy with
    | On_demand -> "on-demand"
    | Pre_all { lookahead } -> Printf.sprintf "pre-all(k=%d)" lookahead
    | Pre_single { lookahead; predictor } ->
      Printf.sprintf "pre-single(k=%d,%s)" lookahead (Predictor.name predictor)
  in
  Printf.sprintf "%s, %s-edge compression (%s)%s" strategy
    (match t.adaptive_k with
    | Some _ -> "adaptive"
    | None ->
      if t.compress_k = max_int then "inf" else string_of_int t.compress_k)
    (match t.mode with Discard -> "discard" | Recompress -> "recompress")
    (match t.budget with
    | None -> ""
    | Some b -> Printf.sprintf ", budget %dB" b)
  ^
  match t.retention with
  | Residency.Policy.Kedge -> ""
  | r -> Printf.sprintf ", retention %s" (Residency.Policy.spec_name r)
