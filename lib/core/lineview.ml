type view = {
  graph : Cfg.Graph.t;
  info : Engine.block_info array;
  trace : int array;
  step_cycles : int array;
  map : Residency.Linemap.t;
}

let default_line_size = 32

let image_of (sc : Scenario.t) =
  match sc.program with
  | Some prog -> prog.Eris.Program.image
  | None ->
    let blocks = Cfg.Graph.blocks sc.graph in
    let image_end =
      Array.fold_left
        (fun a (b : Cfg.Graph.block) -> max a (b.addr + b.byte_size))
        0 blocks
    in
    let image = Bytes.make image_end '\000' in
    Array.iter
      (fun (b : Cfg.Graph.block) ->
        if b.byte_size > 0 then
          Bytes.blit
            (Scenario.synthetic_block_bytes ~id:b.id ~size:b.byte_size)
            0 image b.addr b.byte_size)
      blocks;
    image

let line_compressed_bytes ~codec ~image (map : Residency.Linemap.t) =
  let cost =
    match Compress.Linecodec.of_name codec.Compress.Codec.name with
    | Some (family, _) ->
      fun pos len ->
        (Compress.Linecodec.cost_bits family image ~pos ~len + 7) / 8
    | None ->
      fun pos len ->
        Bytes.length (codec.Compress.Codec.compress (Bytes.sub image pos len))
  in
  Array.init map.nlines (fun i -> max 1 (cost map.addr.(i) map.len.(i)))

let view ?(line_size = default_line_size) (sc : Scenario.t) =
  let map = Residency.Linemap.build ~line_size sc.graph in
  if map.nlines = 0 then invalid_arg "Core.Lineview.view: empty image";
  let image = image_of sc in
  let compressed = line_compressed_bytes ~codec:sc.codec ~image map in
  (* Static per-line cycles: each block's cost split over its lines,
     like one trace visit. Only a default — the run always overrides
     per step via [step_cycles]. *)
  let exec = Array.make map.nlines 0 in
  Array.iteri
    (fun b lines ->
      let m = Array.length lines in
      if m > 0 then begin
        let c = (Cfg.Graph.block sc.graph b).exec_cycles in
        Array.iteri
          (fun i l ->
            exec.(l) <- exec.(l) + (c / m) + (if i < c mod m then 1 else 0))
          lines
      end)
    map.of_block;
  let info =
    Array.init map.nlines (fun i ->
        {
          Engine.exec_cycles = max 1 exec.(i);
          uncompressed_bytes = map.len.(i);
          compressed_bytes = compressed.(i);
        })
  in
  let trace, step_cycles = Residency.Linemap.expand_trace map sc.graph ~trace:sc.trace in
  (* Line graph: edges are the transitions the line trace actually
     takes (self-edges excluded; policies treat re-entry via the
     trace, as Baselines.Granularity does). *)
  let edge_set = Hashtbl.create 64 in
  Array.iteri
    (fun i l ->
      if i > 0 then begin
        let prev = trace.(i - 1) in
        if prev <> l then Hashtbl.replace edge_set (prev, l) ()
      end)
    trace;
  let edges = Hashtbl.fold (fun e () acc -> e :: acc) edge_set [] in
  let graph =
    Cfg.Graph.synthetic ~sizes:map.len map.nlines (List.sort compare edges)
  in
  { graph; info; trace; step_cycles; map }

let run ?config ?profile ?sink ?registry ?line_size (sc : Scenario.t) policy =
  let v = view ?line_size sc in
  let config =
    match config with
    | Some c -> c
    | None -> Config.of_codec ?profile sc.codec
  in
  Engine.run ~config ?sink ?registry ~step_cycles:v.step_cycles ~graph:v.graph
    ~info:v.info ~trace:v.trace policy
