(** Results of one policy-engine run. *)

type t = {
  (* time *)
  total_cycles : int;  (** wall clock of the execution thread *)
  exec_cycles : int;  (** cycles spent executing block bodies *)
  exception_cycles : int;
  patch_cycles : int;
  demand_dec_cycles : int;  (** decompression on the critical path *)
  stall_cycles : int;  (** waiting for in-flight pre-decompressions *)
  baseline_cycles : int;
      (** the same trace with everything resident (no compression
          machinery at all) *)
  (* events *)
  exceptions : int;
  patches : int;
  demand_decompressions : int;
  prefetch_decompressions : int;
  useful_prefetches : int;  (** prefetched copies that were executed *)
  wasted_prefetches : int;
      (** prefetched copies deleted or evicted before any execution *)
  discards : int;  (** k-edge deletions *)
  evictions : int;  (** budget-forced LRU deletions *)
  budget_overflows : int;
      (** decompressions admitted above the budget because no victim
          was evictable *)
  (* helper threads *)
  dec_thread_busy_cycles : int;
  comp_thread_busy_cycles : int;
  (* energy (all zero under the paper-2005 profile) *)
  energy_nj : int;  (** total across every charge source *)
  exec_energy_nj : int;
  exception_energy_nj : int;
  patch_energy_nj : int;  (** patches on the critical path + patch-backs *)
  dec_energy_nj : int;  (** demand + prefetch decompressions *)
  comp_energy_nj : int;  (** recompressions *)
  ram_static_energy_nj : int;
      (** leakage of the decompressed copy area over the run *)
  baseline_energy_nj : int;
      (** exec energy of the baseline trace (everything resident) *)
  (* memory *)
  original_bytes : int;  (** full uncompressed image *)
  compressed_area_bytes : int;  (** always-resident compressed image *)
  peak_decompressed_bytes : int;
  avg_decompressed_bytes : float;
  peak_footprint_bytes : int;  (** compressed area + decompressed peak *)
  avg_footprint_bytes : float;
  (* shape *)
  trace_length : int;
  blocks : int;
}

val overhead_ratio : t -> float
(** [total_cycles / baseline_cycles - 1]; 0 = no slowdown. *)

val energy_overhead_ratio : t -> float
(** [energy_nj / baseline_energy_nj - 1]; 0 when the baseline energy
    is 0 (any all-zero energy profile). *)

val peak_memory_saving : t -> float
(** [1 - peak_footprint / original]: fraction of the original image
    freed at the worst moment. Negative if compression lost. *)

val avg_memory_saving : t -> float

val register : ?labels:(string * string) list -> Sim.Metrics.t -> t -> unit
(** Publishes every field as a counter in the registry (float
    averages are truncated), so engine results, runtime stats and
    event tallies can be rendered and exported through one
    {!Sim.Metrics} surface. *)

val pp : Format.formatter -> t -> unit
val pp_brief : Format.formatter -> t -> unit
