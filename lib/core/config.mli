(** Cost model of the simulated embedded platform.

    Costs are vectors over the shared dimension vocabulary: cycles
    plus energy, with the coefficients chosen by a named device
    profile. Decompression cost scales with the {e compressed} size
    (that is what the decompressor reads); compression cost scales
    with the {e uncompressed} size.

    The model itself is {!Sim.Cost.t} — the one cost vocabulary every
    simulation layer (engine, baselines, experiment harness) shares —
    re-exported here with its fields so existing [config.costs.x]
    accesses keep working. *)

type cost_model = Sim.Cost.t = {
  exception_cycles : int;
      (** taking the memory-protection exception that §5 uses to
          trigger the handler *)
  patch_cycles : int;  (** updating one branch target *)
  dec_setup_cycles : int;
  dec_cycles_per_byte : int;
  comp_setup_cycles : int;
  comp_cycles_per_byte : int;
  energy : Sim.Cost.energy_model;
  profile : string;
}

val default_cost_model : cost_model
(** {!Sim.Cost.default}: the [paper-2005] profile — exception 40,
    patch 4, decompression 30 + 4/byte, compression 30 + 8/byte,
    zero energy. *)

val profiles : string list
(** The known device profile names; head is the default. *)

val cost_model_of_profile : string -> cost_model
(** @raise Invalid_argument on an unknown profile name. *)

val cost_model_of_codec : ?profile:string -> Compress.Codec.t -> cost_model
(** The named profile (default [paper-2005]) with the per-byte rates
    advertised by the codec.
    @raise Invalid_argument on an unknown profile or a rate < 1. *)

type t = { costs : cost_model }

val make : cost_model -> t
(** Validated construction ({!Sim.Cost.validate}): fixed and energy
    coefficients >= 0, per-byte cycle rates >= 1.
    @raise Invalid_argument naming the offending coefficient. *)

val default : t
val of_profile : string -> t
val of_codec : ?profile:string -> Compress.Codec.t -> t

val dec_cycles : t -> compressed_bytes:int -> int
val comp_cycles : t -> uncompressed_bytes:int -> int
