(** Cost model of the simulated embedded platform.

    All costs are in cycles. Decompression cost scales with the
    {e compressed} size (that is what the decompressor reads);
    compression cost scales with the {e uncompressed} size.

    The model itself is {!Sim.Cost.t} — the one cost vocabulary every
    simulation layer (engine, baselines, experiment harness) shares —
    re-exported here with its fields so existing [config.costs.x]
    accesses keep working. *)

type cost_model = Sim.Cost.t = {
  exception_cycles : int;
      (** taking the memory-protection exception that §5 uses to
          trigger the handler *)
  patch_cycles : int;  (** updating one branch target *)
  dec_setup_cycles : int;
  dec_cycles_per_byte : int;
  comp_setup_cycles : int;
  comp_cycles_per_byte : int;
}

val default_cost_model : cost_model
(** {!Sim.Cost.default}: exception 40, patch 4, decompression
    30 + 4/byte, compression 30 + 8/byte. *)

val cost_model_of_codec : Compress.Codec.t -> cost_model
(** {!default_cost_model} with the per-byte rates advertised by the
    codec. *)

type t = { costs : cost_model }

val default : t
val of_codec : Compress.Codec.t -> t

val dec_cycles : t -> compressed_bytes:int -> int
val comp_cycles : t -> uncompressed_bytes:int -> int
