(** The policy space of the paper (Figure 3): the k-edge compression
    algorithm paired with one of three decompression strategies, plus
    the optional §2 memory budget. *)

(** What "compressing" a finished block means. *)
type compression_mode =
  | Discard
      (** §5 implementation: the compressed original never moved, so
          deleting the decompressed copy suffices — no background
          compression work. This is the paper's default. *)
  | Recompress
      (** §3 narrative: a background compression thread actually
          recompresses the block; the memory is only freed when the
          thread finishes. *)

type decompression_strategy =
  | On_demand
      (** lazy: decompress when the execution thread faults on the
          block *)
  | Pre_all of { lookahead : int }
      (** decompress every compressed block at most [lookahead] edges
          ahead *)
  | Pre_single of { lookahead : int; predictor : Predictor.t }
      (** decompress only the predicted most likely block *)

type t = {
  compress_k : int;
      (** the k of the k-edge compression algorithm (>= 1): a resident
          block's decompressed copy is deleted once k further edges
          have been traversed since its last execution *)
  adaptive_k : (int -> int) option;
      (** per-block k override (see {!Adaptive}); [compress_k] is
          ignored for blocks the function covers *)
  mode : compression_mode;
  strategy : decompression_strategy;
  budget : int option;
      (** optional cap on decompressed-area bytes; the retention
          policy's victim selection keeps the area under it *)
  retention : Residency.Policy.spec;
      (** which copies survive: the paper's k-edge/LRU scheme
          ({!Residency.Policy.Kedge}, the default) or one of the
          alternative retention policies *)
}

val make :
  ?mode:compression_mode ->
  ?strategy:decompression_strategy ->
  ?budget:int ->
  ?adaptive_k:(int -> int) ->
  ?retention:Residency.Policy.spec ->
  compress_k:int ->
  unit ->
  t
(** Defaults: [Discard], [On_demand], no budget, uniform k, [Kedge]
    retention.
    @raise Invalid_argument if [compress_k < 1], a lookahead is
    [< 1], the budget is [<= 0], or the retention spec is malformed
    (loop-aware weight [< 1], negative pinned ids). *)

val on_demand : k:int -> t
val pre_all : k:int -> lookahead:int -> t
val pre_single : k:int -> lookahead:int -> predictor:Predictor.t -> t

val never_compress : t
(** Decompress-once baseline: huge [compress_k], on-demand. *)

val describe : t -> string
