(** End-to-end glue: program/graph + trace + codec, ready to run under
    any policy. This is the library's main entry point. *)

type t = {
  name : string;
  graph : Cfg.Graph.t;
  info : Engine.block_info array;
  trace : int array;
  codec : Compress.Codec.t;
  program : Eris.Program.t option;
}

val of_program :
  ?name:string ->
  ?codec:Compress.Codec.t ->
  ?fuel:int ->
  ?mem_init:(Eris.Machine.t -> unit) ->
  Eris.Program.t ->
  t
(** Builds the CFG, executes the program once to obtain the
    instruction access pattern, and compresses every block with
    [codec] (default {!Compress.Registry.default}).
    @raise Eris.Machine.Fault if the program does not halt. *)

val of_source :
  ?name:string ->
  ?codec:Compress.Codec.t ->
  ?fuel:int ->
  ?mem_init:(Eris.Machine.t -> unit) ->
  string ->
  t
(** {!of_program} over {!Eris.Asm.assemble_exn}.
    @raise Eris.Asm.Error on assembly problems. *)

val of_graph :
  ?name:string ->
  ?codec:Compress.Codec.t ->
  Cfg.Graph.t ->
  trace:int array ->
  t
(** For synthetic graphs without real code: every block gets
    deterministic pseudo-instruction bytes of its declared size, which
    are then really compressed with [codec], so compression ratios and
    costs stay honest. *)

val synthetic_block_bytes : id:int -> size:int -> bytes
(** The pseudo-code generator used by {!of_graph}: word-structured,
    locally repetitive byte patterns resembling RISC instruction
    streams. *)

val run :
  ?config:Config.t ->
  ?profile:string ->
  ?log:(Engine.event -> unit) ->
  ?sink:Sim.Events.sink ->
  ?registry:Sim.Metrics.t ->
  ?charge_log:(Sim.Cost.source -> Sim.Cost.vector -> unit) ->
  t ->
  Policy.t ->
  Metrics.t
(** Runs the policy engine. The default cost model takes the per-byte
    decompression/compression rates from the scenario's codec, with
    coefficients from the named device [profile] (default
    [paper-2005]); an explicit [config] wins over [profile].
    [sink]/[registry] stream events and publish final metrics through
    the {!Sim} kernel; [charge_log] observes every cost vector — see
    {!Engine.run}.
    @raise Invalid_argument on an unknown [profile]. *)

val profile : t -> Cfg.Profile.t
(** Edge profile of the scenario's own trace (for profile-guided
    prediction). *)

val pp_summary : Format.formatter -> t -> unit
